//! Byte serialization of the cluster's wire unit —
//! [`SessionFrame`]`<`[`BatchMsg`]`>` — for the TCP transport.
//!
//! The in-process [`ThreadNet`](prcc_net::ThreadNet) moves Rust values
//! between threads; real sockets move bytes between address spaces.
//! [`ClusterCodec`] is the bridge: a [`LinkCodec`] that serializes every
//! session frame the threaded runtime produces, carrying **exactly the
//! wire codec's bytes** for compressed metadata — a
//! [`Metadata::Projected`] slice travels as the same zig-zag varint
//! delta frame [`PairLayout::decode_frame`] consumes in-process, plus a
//! reversible zero-run packing (dense graphs produce long runs of
//! zero deltas: 529 of clique-24's 530 explicit counters are unchanged
//! between two consecutive updates from one writer, and each still
//! costs one explicit `0x00` in the dense delta format — packing
//! collapses the run to two bytes without changing what the decoder
//! sees).
//!
//! # Delta state lives below the session layer
//!
//! Per-pair delta framing needs the decoder to observe the encoder's
//! frame sequence exactly once, in order. The session layer *above*
//! retransmits and reorders payloads, so it cannot provide that — but
//! one TCP connection *below* can: a connection delivers its bytes
//! exactly once, in order, or dies. `ClusterCodec` therefore scopes its
//! delta state to the connection (the transport builds a fresh codec per
//! connect on both ends, see [`CodecFactory`]), and a retransmitted
//! session payload is simply re-encoded against the current link state —
//! the payload values decode identically, only the framing bytes differ.
//!
//! A frame that cannot be delta-framed safely (a relayed update whose
//! issuer is not this link's sender, a slice of unexpected length, or
//! values failing the layout's derived-row verification) falls back to
//! absolute varints — lossless, just larger.

use crate::message::{BatchMsg, DepEntry, Metadata, TransitInfo, UpdateMsg};
use crate::value::Value;
use prcc_net::{
    pack_zero_runs, unpack_zero_runs, CodecFactory, FrameError, LinkCodec, SessionFrame,
};
use prcc_sharegraph::{RegisterId, ReplicaId};
use prcc_timestamp::wire::{read_varint, write_varint};
use prcc_timestamp::{EdgeTimestamp, PairLayout, TsRegistry, VectorClock};
use std::sync::Arc;

/// Frame tags for [`SessionFrame`] variants.
const TAG_BARE: u8 = 0;
const TAG_DATA: u8 = 1;
const TAG_ACK: u8 = 2;
const TAG_CATCH_UP: u8 = 3;

/// Metadata tags.
const META_EDGE: u8 = 0;
const META_VECTOR: u8 = 1;
const META_DEPS: u8 = 2;
/// Projected slice as absolute varints — the always-correct fallback.
const META_PROJECTED_ABS: u8 = 3;
/// Projected slice as a zero-run-packed delta frame against this
/// connection's per-pair stream state. Only this tag advances the state.
const META_PROJECTED_DELTA: u8 = 4;

/// Value tags (`0` is reserved for `None` in option position).
const VAL_U64: u8 = 1;
const VAL_STR: u8 = 2;
const VAL_BYTES: u8 = 3;

fn err(msg: &'static str) -> FrameError {
    FrameError::Malformed(msg)
}

fn rd(buf: &[u8], pos: &mut usize) -> Result<u64, FrameError> {
    read_varint(buf, pos).ok_or(err("truncated varint"))
}

fn rd_u8(buf: &[u8], pos: &mut usize) -> Result<u8, FrameError> {
    let b = *buf.get(*pos).ok_or(err("truncated tag byte"))?;
    *pos += 1;
    Ok(b)
}

fn rd_len(
    buf: &[u8],
    pos: &mut usize,
    cap: usize,
    what: &'static str,
) -> Result<usize, FrameError> {
    let n = rd(buf, pos)? as usize;
    // Any count must be backed by at least one byte still in the frame —
    // rejects length bombs before any allocation.
    if n > cap || n > buf.len() - *pos {
        return Err(FrameError::Malformed(what));
    }
    Ok(n)
}

fn rd_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a [u8], FrameError> {
    let n = rd_len(buf, pos, usize::MAX, "byte run longer than frame")?;
    let s = &buf[*pos..*pos + n];
    *pos += n;
    Ok(s)
}

fn wr_value(v: &Value, buf: &mut Vec<u8>) {
    match v {
        Value::U64(n) => {
            buf.push(VAL_U64);
            write_varint(buf, *n);
        }
        Value::Str(s) => {
            buf.push(VAL_STR);
            write_varint(buf, s.len() as u64);
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            buf.push(VAL_BYTES);
            write_varint(buf, b.len() as u64);
            buf.extend_from_slice(b);
        }
    }
}

fn rd_value_tagged(tag: u8, buf: &[u8], pos: &mut usize) -> Result<Value, FrameError> {
    match tag {
        VAL_U64 => Ok(Value::U64(rd(buf, pos)?)),
        VAL_STR => {
            let s = rd_bytes(buf, pos)?;
            Ok(Value::Str(
                std::str::from_utf8(s)
                    .map_err(|_| err("non-UTF-8 string value"))?
                    .to_owned(),
            ))
        }
        VAL_BYTES => Ok(Value::Bytes(rd_bytes(buf, pos)?.to_vec())),
        _ => Err(err("unknown value tag")),
    }
}

/// One direction of a per-pair delta stream: the layout plus the
/// previous frame's explicit values (zeros before the first frame, like
/// [`prcc_timestamp::WireEncoder`]).
struct PairStream {
    layout: Arc<PairLayout>,
    prev: Vec<u64>,
    next: Vec<u64>,
}

impl PairStream {
    fn new(layout: Arc<PairLayout>) -> Self {
        let n = layout.num_explicit();
        PairStream {
            layout,
            prev: vec![0; n],
            next: Vec::with_capacity(n),
        }
    }
}

/// [`LinkCodec`] for [`SessionFrame`]`<`[`BatchMsg`]`>` — the threaded
/// runtime's complete wire unit, serialized with varints throughout.
///
/// Construct per connection via [`cluster_codec`]; encode state and
/// decode state are independent (the transport uses each instance in one
/// direction only).
pub struct ClusterCodec {
    /// This endpoint's replica id.
    me: ReplicaId,
    /// Outgoing delta stream: `(receiver = peer, sender = me)`.
    enc: PairStream,
    /// Incoming delta stream: `(receiver = me, sender = peer)`.
    dec: PairStream,
    /// Scratch for zero-run packing / canonical-byte reconstruction.
    scratch: Vec<u8>,
}

impl std::fmt::Debug for ClusterCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterCodec")
            .field("me", &self.me)
            .finish()
    }
}

/// Builds the [`CodecFactory`] the TCP transport calls once per
/// connection: `factory(peer)` yields a fresh [`ClusterCodec`] whose
/// delta streams start from zero on both ends simultaneously.
pub fn cluster_codec(
    me: ReplicaId,
    registry: Arc<TsRegistry>,
) -> CodecFactory<SessionFrame<BatchMsg>> {
    Arc::new(move |peer: ReplicaId| {
        Box::new(ClusterCodec {
            me,
            enc: PairStream::new(registry.wire_layout(peer, me)),
            dec: PairStream::new(registry.wire_layout(me, peer)),
            scratch: Vec::new(),
        }) as Box<dyn LinkCodec<Msg = SessionFrame<BatchMsg>>>
    })
}

impl ClusterCodec {
    fn encode_meta(&mut self, msg: &UpdateMsg, buf: &mut Vec<u8>) {
        match &*msg.meta {
            Metadata::Edge(ts) => {
                buf.push(META_EDGE);
                write_varint(buf, u64::from(ts.replica().raw()));
                write_varint(buf, ts.values().len() as u64);
                for &v in ts.values() {
                    write_varint(buf, v);
                }
            }
            Metadata::Vector(vc) => {
                buf.push(META_VECTOR);
                write_varint(buf, vc.len() as u64);
                for &v in vc.values() {
                    write_varint(buf, v);
                }
            }
            Metadata::Deps(deps) => {
                buf.push(META_DEPS);
                write_varint(buf, deps.len() as u64);
                for d in deps {
                    write_varint(buf, u64::from(d.issuer.raw()));
                    write_varint(buf, d.seq);
                    write_varint(buf, u64::from(d.register.raw()));
                }
            }
            Metadata::Projected {
                values,
                encoded_len,
            } => {
                // Delta framing is sound only when this slice belongs to
                // this link's own pair stream: issued here, shaped like
                // the pair layout, and exactly reconstructible from its
                // explicit entries. Anything else ships absolute.
                let deltable = msg.transit.is_none()
                    && msg.issuer == self.me
                    && values.len() == self.enc.layout.common_len()
                    && self.enc.layout.verify_derived(values).is_ok();
                if deltable {
                    buf.push(META_PROJECTED_DELTA);
                    write_varint(buf, *encoded_len as u64);
                    // Canonical wire-codec bytes: the explicit entries as
                    // zig-zag deltas against the previous frame on this
                    // connection — byte-identical to what
                    // `PairLayout::encode_frame` emits for this slice.
                    self.scratch.clear();
                    self.enc.next.clear();
                    for (j, &idx) in self.enc.layout.explicit_indices().iter().enumerate() {
                        let v = values[idx];
                        write_varint(
                            &mut self.scratch,
                            prcc_timestamp::wire::encode_delta(self.enc.prev[j], v),
                        );
                        self.enc.next.push(v);
                    }
                    std::mem::swap(&mut self.enc.prev, &mut self.enc.next);
                    let packed_at = buf.len();
                    write_varint(buf, 0); // patched below if short enough
                    let before = buf.len();
                    pack_zero_runs(&self.scratch, buf);
                    let packed = buf.len() - before;
                    // Patch the single-byte length placeholder; a packed
                    // segment ≥ 128 bytes needs a longer varint, so
                    // rewrite the tail instead (rare — dense steady state
                    // packs hundreds of deltas into a handful of bytes).
                    if packed < 0x80 {
                        buf[packed_at] = packed as u8;
                    } else {
                        let tail: Vec<u8> = buf.split_off(before);
                        buf.truncate(packed_at);
                        write_varint(buf, packed as u64);
                        buf.extend_from_slice(&tail);
                    }
                } else {
                    buf.push(META_PROJECTED_ABS);
                    write_varint(buf, *encoded_len as u64);
                    write_varint(buf, values.len() as u64);
                    for &v in values {
                        write_varint(buf, v);
                    }
                }
            }
        }
    }

    fn decode_meta(&mut self, buf: &[u8], pos: &mut usize) -> Result<Metadata, FrameError> {
        match rd_u8(buf, pos)? {
            META_EDGE => {
                let replica = ReplicaId::new(
                    u32::try_from(rd(buf, pos)?).map_err(|_| err("edge replica id overflow"))?,
                );
                let n = rd_len(buf, pos, 1 << 24, "edge counter count")?;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(rd(buf, pos)?);
                }
                Ok(Metadata::Edge(EdgeTimestamp::from_parts(replica, values)))
            }
            META_VECTOR => {
                let n = rd_len(buf, pos, 1 << 24, "vector counter count")?;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(rd(buf, pos)?);
                }
                Ok(Metadata::Vector(VectorClock::from_values(values)))
            }
            META_DEPS => {
                let n = rd_len(buf, pos, 1 << 24, "dep entry count")?;
                let mut deps = Vec::with_capacity(n);
                for _ in 0..n {
                    let issuer = ReplicaId::new(
                        u32::try_from(rd(buf, pos)?).map_err(|_| err("dep issuer overflow"))?,
                    );
                    let seq = rd(buf, pos)?;
                    let register = RegisterId::new(
                        u32::try_from(rd(buf, pos)?).map_err(|_| err("dep register overflow"))?,
                    );
                    deps.push(DepEntry {
                        issuer,
                        seq,
                        register,
                    });
                }
                Ok(Metadata::Deps(deps))
            }
            META_PROJECTED_ABS => {
                let encoded_len = rd(buf, pos)? as usize;
                let n = rd_len(buf, pos, 1 << 24, "projected counter count")?;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(rd(buf, pos)?);
                }
                Ok(Metadata::Projected {
                    values,
                    encoded_len,
                })
            }
            META_PROJECTED_DELTA => {
                let encoded_len = rd(buf, pos)? as usize;
                let packed = rd_bytes(buf, pos)?;
                // Reconstruct the canonical wire-codec bytes, then let
                // the layout's own decoder (explicit deltas + derived-row
                // reconstruction + verification) do the real work.
                self.scratch.clear();
                // A zig-zag delta varint is ≤ 10 bytes; anything longer
                // than the worst case is hostile.
                let cap = self.dec.layout.num_explicit() * 10;
                unpack_zero_runs(packed, &mut self.scratch, cap)?;
                let mut fpos = 0;
                let slice = self
                    .dec
                    .layout
                    .decode_frame(&self.dec.prev, &self.scratch, &mut fpos, &mut self.dec.next)
                    .map_err(|e| FrameError::Codec(e.to_string()))?;
                if fpos != self.scratch.len() {
                    return Err(err("trailing bytes in delta frame"));
                }
                // Commit stream state only on success (transactional; on
                // error the caller tears the connection down anyway).
                std::mem::swap(&mut self.dec.prev, &mut self.dec.next);
                Ok(Metadata::Projected {
                    values: slice,
                    encoded_len,
                })
            }
            _ => Err(err("unknown metadata tag")),
        }
    }

    fn encode_update(&mut self, msg: &UpdateMsg, buf: &mut Vec<u8>) {
        write_varint(buf, u64::from(msg.issuer.raw()));
        write_varint(buf, msg.seq);
        write_varint(buf, u64::from(msg.register.raw()));
        match &msg.value {
            None => buf.push(0),
            Some(v) => wr_value(v, buf),
        }
        self.encode_meta(msg, buf);
        match &msg.transit {
            None => buf.push(0),
            Some(t) => {
                buf.push(1);
                write_varint(buf, u64::from(t.origin.0.raw()));
                write_varint(buf, t.origin.1);
                write_varint(buf, u64::from(t.register.raw()));
                write_varint(buf, u64::from(t.final_dst.raw()));
                wr_value(&t.value, buf);
            }
        }
    }

    fn decode_update(&mut self, buf: &[u8], pos: &mut usize) -> Result<UpdateMsg, FrameError> {
        let issuer =
            ReplicaId::new(u32::try_from(rd(buf, pos)?).map_err(|_| err("issuer id overflow"))?);
        let seq = rd(buf, pos)?;
        let register =
            RegisterId::new(u32::try_from(rd(buf, pos)?).map_err(|_| err("register overflow"))?);
        let value = match rd_u8(buf, pos)? {
            0 => None,
            tag => Some(rd_value_tagged(tag, buf, pos)?),
        };
        let meta = Arc::new(self.decode_meta(buf, pos)?);
        let transit = match rd_u8(buf, pos)? {
            0 => None,
            1 => {
                let o_rep = ReplicaId::new(
                    u32::try_from(rd(buf, pos)?).map_err(|_| err("transit origin overflow"))?,
                );
                let o_seq = rd(buf, pos)?;
                let t_reg = RegisterId::new(
                    u32::try_from(rd(buf, pos)?).map_err(|_| err("transit register overflow"))?,
                );
                let final_dst = ReplicaId::new(
                    u32::try_from(rd(buf, pos)?).map_err(|_| err("transit dst overflow"))?,
                );
                let tag = rd_u8(buf, pos)?;
                let value = rd_value_tagged(tag, buf, pos)?;
                Some(TransitInfo {
                    origin: (o_rep, o_seq),
                    register: t_reg,
                    final_dst,
                    value,
                })
            }
            _ => return Err(err("bad transit flag")),
        };
        Ok(UpdateMsg {
            issuer,
            seq,
            register,
            value,
            meta,
            transit,
        })
    }

    fn encode_batch(&mut self, batch: &BatchMsg, buf: &mut Vec<u8>) {
        write_varint(buf, batch.updates.len() as u64);
        for m in &batch.updates {
            self.encode_update(m, buf);
        }
    }

    fn decode_batch(&mut self, buf: &[u8], pos: &mut usize) -> Result<BatchMsg, FrameError> {
        let n = rd_len(buf, pos, 1 << 24, "batch update count")?;
        let mut updates = Vec::with_capacity(n);
        for _ in 0..n {
            updates.push(self.decode_update(buf, pos)?);
        }
        Ok(BatchMsg { updates })
    }
}

impl LinkCodec for ClusterCodec {
    type Msg = SessionFrame<BatchMsg>;

    fn encode(&mut self, msg: &Self::Msg, buf: &mut Vec<u8>) {
        match msg {
            SessionFrame::Bare(b) => {
                buf.push(TAG_BARE);
                self.encode_batch(b, buf);
            }
            SessionFrame::Data { seq, payload, ack } => {
                buf.push(TAG_DATA);
                write_varint(buf, *seq);
                match ack {
                    None => buf.push(0),
                    Some(a) => {
                        buf.push(1);
                        write_varint(buf, *a);
                    }
                }
                self.encode_batch(payload, buf);
            }
            SessionFrame::Ack { cum, sacks } => {
                buf.push(TAG_ACK);
                write_varint(buf, *cum);
                write_varint(buf, sacks.len() as u64);
                for &s in sacks {
                    write_varint(buf, s);
                }
            }
            SessionFrame::CatchUp { recv_cum } => {
                buf.push(TAG_CATCH_UP);
                write_varint(buf, *recv_cum);
            }
        }
    }

    fn decode(&mut self, body: &[u8]) -> Result<Self::Msg, FrameError> {
        let mut pos = 0;
        let frame = match rd_u8(body, &mut pos)? {
            TAG_BARE => SessionFrame::Bare(self.decode_batch(body, &mut pos)?),
            TAG_DATA => {
                let seq = rd(body, &mut pos)?;
                let ack = match rd_u8(body, &mut pos)? {
                    0 => None,
                    1 => Some(rd(body, &mut pos)?),
                    _ => return Err(err("bad ack flag")),
                };
                let payload = self.decode_batch(body, &mut pos)?;
                SessionFrame::Data { seq, payload, ack }
            }
            TAG_ACK => {
                let cum = rd(body, &mut pos)?;
                let n = rd_len(body, &mut pos, 1 << 20, "sack count")?;
                let mut sacks = Vec::with_capacity(n);
                for _ in 0..n {
                    sacks.push(rd(body, &mut pos)?);
                }
                SessionFrame::Ack { cum, sacks }
            }
            TAG_CATCH_UP => SessionFrame::CatchUp {
                recv_cum: rd(body, &mut pos)?,
            },
            _ => return Err(err("unknown session frame tag")),
        };
        if pos != body.len() {
            return Err(err("trailing bytes after session frame"));
        }
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::{topology, LoopConfig, TimestampGraphs};

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }

    fn registry(g: &prcc_sharegraph::ShareGraph) -> Arc<TsRegistry> {
        Arc::new(TsRegistry::new(
            g,
            TimestampGraphs::build(g, LoopConfig::EXHAUSTIVE),
        ))
    }

    type BoxedCodec = Box<dyn LinkCodec<Msg = SessionFrame<BatchMsg>>>;

    /// Encoder at replica 0, decoder at replica 1, one connection each
    /// way — what the transport builds for a 0 → 1 link.
    fn link(g: &prcc_sharegraph::ShareGraph) -> (BoxedCodec, BoxedCodec) {
        let reg = registry(g);
        let enc = cluster_codec(r(0), reg.clone())(r(1));
        let dec = cluster_codec(r(1), reg)(r(0));
        (enc, dec)
    }

    fn roundtrip(
        enc: &mut dyn LinkCodec<Msg = SessionFrame<BatchMsg>>,
        dec: &mut dyn LinkCodec<Msg = SessionFrame<BatchMsg>>,
        frame: &SessionFrame<BatchMsg>,
    ) -> SessionFrame<BatchMsg> {
        let mut buf = Vec::new();
        enc.encode(frame, &mut buf);
        dec.decode(&buf).expect("frame must decode")
    }

    fn msg(issuer: u32, seq: u64, meta: Metadata) -> UpdateMsg {
        UpdateMsg {
            issuer: r(issuer),
            seq,
            register: x(0),
            value: Some(Value::U64(seq * 10)),
            meta: Arc::new(meta),
            transit: None,
        }
    }

    #[test]
    fn control_frames_roundtrip() {
        let g = topology::ring(4);
        let (mut enc, mut dec) = link(&g);
        for frame in [
            SessionFrame::Ack {
                cum: 7,
                sacks: vec![9, 12],
            },
            SessionFrame::CatchUp { recv_cum: 3 },
        ] {
            assert_eq!(roundtrip(enc.as_mut(), dec.as_mut(), &frame), frame);
        }
    }

    #[test]
    fn all_metadata_kinds_roundtrip() {
        let g = topology::ring(4);
        let reg = registry(&g);
        let (mut enc, mut dec) = link(&g);
        let mut ts = reg.new_timestamp(r(0));
        reg.advance(&mut ts, x(0));
        let metas = vec![
            Metadata::Edge(ts),
            Metadata::Vector(VectorClock::from_values(vec![4, 0, 9, 2])),
            Metadata::Deps(vec![DepEntry {
                issuer: r(2),
                seq: 5,
                register: x(1),
            }]),
        ];
        for (i, meta) in metas.into_iter().enumerate() {
            let frame = SessionFrame::Bare(BatchMsg::singleton(msg(0, i as u64, meta)));
            assert_eq!(roundtrip(enc.as_mut(), dec.as_mut(), &frame), frame);
        }
    }

    #[test]
    fn values_and_transit_roundtrip() {
        let g = topology::ring(4);
        let (mut enc, mut dec) = link(&g);
        let mut m = msg(0, 0, Metadata::Vector(VectorClock::from_values(vec![1; 4])));
        m.value = Some(Value::Str("héllo".into()));
        m.transit = Some(TransitInfo {
            origin: (r(3), 42),
            register: x(7),
            final_dst: r(2),
            value: Value::Bytes(vec![0, 1, 2, 0, 0]),
        });
        let frame = SessionFrame::Data {
            seq: 9,
            payload: BatchMsg::singleton(m),
            ack: Some(8),
        };
        assert_eq!(roundtrip(enc.as_mut(), dec.as_mut(), &frame), frame);
        let meta_only = UpdateMsg {
            value: None,
            ..msg(0, 1, Metadata::Vector(VectorClock::from_values(vec![2; 4])))
        };
        let frame = SessionFrame::Bare(BatchMsg::singleton(meta_only));
        assert_eq!(roundtrip(enc.as_mut(), dec.as_mut(), &frame), frame);
    }

    /// The heart of the tentpole: a projected slice belonging to this
    /// link's pair stream ships as a delta frame, stays in lockstep
    /// across many frames, and collapses zero-delta runs.
    #[test]
    fn projected_delta_stream_stays_in_lockstep() {
        let g = topology::clique_full(6, 2);
        let reg = registry(&g);
        let layout = reg.wire_layout(r(1), r(0));
        let (mut enc, mut dec) = link(&g);
        // Simulate a writer at replica 0: its own counters grow, the
        // slice always satisfies the derived rows (we use the layout's
        // own projection of a live timestamp to guarantee that).
        let mut ts = reg.new_timestamp(r(0));
        let mut dense_bytes = 0usize;
        let mut wire_bytes = 0usize;
        for seq in 0..20u64 {
            reg.advance(&mut ts, x(0));
            let slice = layout.project(ts.values());
            let frame = SessionFrame::Bare(BatchMsg::singleton(msg(
                0,
                seq,
                Metadata::Projected {
                    values: slice.clone(),
                    encoded_len: 1,
                },
            )));
            let mut buf = Vec::new();
            enc.encode(&frame, &mut buf);
            wire_bytes += buf.len();
            dense_bytes += layout.num_explicit();
            let got = dec.decode(&buf).expect("delta frame decodes");
            assert_eq!(got, frame, "frame {seq} out of lockstep");
        }
        // Zero-run packing must beat one-byte-per-explicit dense framing.
        assert!(
            wire_bytes < dense_bytes,
            "packed stream ({wire_bytes} B) not smaller than dense ({dense_bytes} B)"
        );
    }

    /// A projected slice that is not this link's own stream (relayed
    /// issuer) falls back to absolute framing and still roundtrips.
    #[test]
    fn foreign_issuer_falls_back_to_absolute() {
        let g = topology::clique_full(4, 2);
        let reg = registry(&g);
        // Slice shaped for the (1, 2) pair but sent over the 0 → 1 link.
        let layout = reg.wire_layout(r(1), r(2));
        let (mut enc, mut dec) = link(&g);
        let mut ts = reg.new_timestamp(r(2));
        reg.advance(&mut ts, x(1));
        let slice = layout.project(ts.values());
        let frame = SessionFrame::Bare(BatchMsg::singleton(msg(
            2,
            0,
            Metadata::Projected {
                values: slice,
                encoded_len: 3,
            },
        )));
        assert_eq!(roundtrip(enc.as_mut(), dec.as_mut(), &frame), frame);
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        let g = topology::ring(4);
        let (_, mut dec) = link(&g);
        for body in [
            &[][..],
            &[99][..],
            &[TAG_DATA, 0x80][..],              // truncated varint
            &[TAG_ACK, 1, 0xff, 0xff][..],      // sack count bomb
            &[TAG_BARE, 1, 0, 0, 0, 0, 99][..], // bad value tag
            &[TAG_CATCH_UP, 1, 7][..],          // trailing bytes
        ] {
            assert!(dec.decode(body).is_err(), "body {body:?} must be rejected");
        }
    }
}
