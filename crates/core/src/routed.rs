//! Restricted inter-replica communication — "breaking the ring"
//! (Appendix D, Figure 13).
//!
//! In a ring of `n` replicas every timestamp needs `2n` counters. If one
//! ring edge is *broken* — its shared register split into two local
//! copies kept in sync by piggybacking the value on **virtual registers**
//! along the remaining path — the share graph becomes a tree and each
//! timestamp shrinks to `2·N_i` counters, at the cost of multi-hop
//! propagation latency for writes to the broken register.
//!
//! [`RoutedRing`] implements exactly that transformation and protocol:
//! writes to the broken register are carried hop-by-hop as
//! metadata+payload updates on fresh virtual registers; intermediate
//! replicas re-issue toward the destination; the final holder applies the
//! value to its local twin copy.

use crate::message::{TransitInfo, UpdateMsg};
use crate::replica::Replica;
use crate::system::SystemMetrics;
use crate::tracker::{CausalityTracker, EdgeTracker};
use crate::value::Value;
use prcc_checker::{check, CheckReport, Trace, UpdateId};
use prcc_net::{DelayModel, SimNetwork};
use prcc_sharegraph::{
    LoopConfig, Placement, RegSet, RegisterId, ReplicaId, ShareGraph, TimestampGraphs,
};
use prcc_timestamp::TsRegistry;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A ring deployment with one broken edge (Appendix D's optimization).
pub struct RoutedRing {
    n: usize,
    /// Logical (original ring) placement, used for consistency checking.
    logical: Placement,
    /// Effective share graph: ring edge (n−1, 0) removed, virtual
    /// registers along the path.
    effective: ShareGraph,
    /// The register whose direct edge was broken.
    broken: RegisterId,
    /// Twin copy id of the broken register at the far endpoint.
    twin: RegisterId,
    /// Virtual register on each path edge `(i, i+1)`, indexed by `i`.
    virtuals: Vec<RegisterId>,
    replicas: Vec<Replica>,
    net: SimNetwork<UpdateMsg>,
    trace: Trace,
    metrics: SystemMetrics,
    issue_time: HashMap<UpdateId, u64>,
    /// Pending transit bookkeeping: origin update → issue tick (for
    /// visibility latency of the broken register).
    transit_issue: HashMap<(ReplicaId, u64), u64>,
}

impl fmt::Debug for RoutedRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoutedRing")
            .field("n", &self.n)
            .field("broken", &self.broken)
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl RoutedRing {
    /// Builds a ring of `n` replicas (register `i` shared by `i` and
    /// `i+1 mod n`) with the edge between `n−1` and `0` broken: register
    /// `n−1` becomes a local copy at `n−1` plus a twin at `0`, synced via
    /// virtual registers along the path `n−1 → n−2 → … → 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn new(n: usize, delay: DelayModel, seed: u64) -> Self {
        assert!(n >= 3, "a ring needs at least 3 replicas");
        let logical = prcc_sharegraph::topology::ring(n).placement().clone();
        let broken = RegisterId::new((n - 1) as u32);
        let twin = RegisterId::new(n as u32);
        // Virtual registers: n+1 .. n+n-1, one per path edge (i, i+1),
        // 0 ≤ i ≤ n−2.
        let virtuals: Vec<RegisterId> = (0..n - 1)
            .map(|i| RegisterId::new((n + 1 + i) as u32))
            .collect();

        let mut sets: Vec<RegSet> = (0..n)
            .map(|i| logical.registers_of(ReplicaId::new(i as u32)).clone())
            .collect();
        // Break the ring: register n−1 was shared by replicas n−1 and 0.
        // Keep it at n−1; replica 0 gets the twin instead.
        sets[0].remove(broken);
        sets[0].insert(twin);
        // Lay the virtual registers.
        for (i, &v) in virtuals.iter().enumerate() {
            sets[i].insert(v);
            sets[i + 1].insert(v);
        }
        let effective = ShareGraph::new(Placement::from_sets(sets));
        let registry = Arc::new(TsRegistry::new(
            &effective,
            TimestampGraphs::build(&effective, LoopConfig::EXHAUSTIVE),
        ));
        let replicas = effective
            .replicas()
            .map(|i| {
                Replica::new(
                    i,
                    effective.placement().registers_of(i).clone(),
                    Box::new(EdgeTracker::new(registry.clone(), i)) as Box<dyn CausalityTracker>,
                )
            })
            .collect();

        RoutedRing {
            n,
            logical,
            effective,
            broken,
            twin,
            virtuals,
            replicas,
            net: SimNetwork::new(delay, seed),
            trace: Trace::new(),
            metrics: SystemMetrics::default(),
            issue_time: HashMap::new(),
            transit_issue: HashMap::new(),
        }
    }

    /// The effective (broken) share graph.
    pub fn effective_graph(&self) -> &ShareGraph {
        &self.effective
    }

    /// The logical ring placement.
    pub fn logical_placement(&self) -> &Placement {
        &self.logical
    }

    /// The broken register's id (`n−1`).
    pub fn broken_register(&self) -> RegisterId {
        self.broken
    }

    /// Per-replica timestamp counter counts under the broken topology.
    pub fn timestamp_counters(&self) -> Vec<usize> {
        self.replicas
            .iter()
            .map(|r| r.tracker().num_counters())
            .collect()
    }

    /// Client write at replica `r`. For the broken register at its
    /// endpoints, the value is routed; all other registers use the direct
    /// protocol.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not logically store `x`.
    pub fn write(&mut self, r: ReplicaId, x: RegisterId, v: Value) -> UpdateId {
        assert!(
            self.logical.stores(r, x),
            "register {x} not logically stored at {r}"
        );
        let local_reg = if x == self.broken && r == ReplicaId::new(0) {
            self.twin
        } else {
            x
        };
        let holders: Vec<ReplicaId> = self
            .effective
            .placement()
            .holders(local_reg)
            .iter()
            .copied()
            .filter(|&h| h != r)
            .collect();
        let (msg, holders) = self.replicas[r.index()]
            .write(local_reg, v.clone(), holders)
            .unwrap_or_else(|e| panic!("{e}"));
        let id = UpdateId {
            issuer: r,
            seq: msg.seq,
        };
        self.trace.record_issue_with_id(id, x);
        self.issue_time.insert(id, self.net.now());
        for dst in &holders {
            self.account_send(&msg);
            self.net.send(r, *dst, msg.clone());
        }
        // Routed propagation for the broken register.
        if x == self.broken && (r == ReplicaId::new(0) || r.index() == self.n - 1) {
            let final_dst = if r == ReplicaId::new(0) {
                ReplicaId::new((self.n - 1) as u32)
            } else {
                ReplicaId::new(0)
            };
            self.transit_issue.insert((r, msg.seq), self.net.now());
            self.send_transit_hop(
                r,
                TransitInfo {
                    origin: (r, msg.seq),
                    register: x,
                    final_dst,
                    value: v,
                },
            );
        }
        id
    }

    /// Issues the next virtual-register hop from `at` toward the transit's
    /// destination.
    fn send_transit_hop(&mut self, at: ReplicaId, transit: TransitInfo) {
        // Path is the line 0 — 1 — … — n−1; hop toward final_dst.
        let next = if transit.final_dst.index() > at.index() {
            ReplicaId::new(at.raw() + 1)
        } else {
            ReplicaId::new(at.raw() - 1)
        };
        let vreg = self.virtuals[at.index().min(next.index())];
        let mut msg = self.replicas[at.index()].issue_virtual(vreg, None);
        msg.transit = Some(transit);
        let id = UpdateId {
            issuer: at,
            seq: msg.seq,
        };
        self.trace.record_issue_with_id(id, vreg);
        self.issue_time.insert(id, self.net.now());
        self.account_send(&msg);
        self.net.send(at, next, msg);
    }

    fn account_send(&mut self, m: &UpdateMsg) {
        self.metrics.metadata_bytes += m.meta.size_bytes();
        if let Some(v) = &m.value {
            self.metrics.data_messages += 1;
            self.metrics.payload_bytes += v.size_bytes();
        } else {
            self.metrics.meta_messages += 1;
        }
    }

    /// Reads the *logical* register `x` at replica `r`.
    pub fn read(&self, r: ReplicaId, x: RegisterId) -> Option<&Value> {
        let local = if x == self.broken && r == ReplicaId::new(0) {
            self.twin
        } else {
            x
        };
        self.replicas[r.index()].read(local)
    }

    /// Delivers one message; returns `false` at quiescence.
    pub fn step(&mut self) -> bool {
        let Some((t, env)) = self.net.next_delivery() else {
            return false;
        };
        let dst = env.dst;
        let applied = self.replicas[dst.index()].receive(env.msg);
        for a in applied {
            let id = UpdateId {
                issuer: a.msg.issuer,
                seq: a.msg.seq,
            };
            // A terminating transit applies the logical write atomically
            // with the hop update — record the origin first so the trace
            // reflects that the dependency lands with (not after) the hop.
            if let Some(transit) = &a.msg.transit {
                if transit.final_dst == dst {
                    let origin = UpdateId {
                        issuer: transit.origin.0,
                        seq: transit.origin.1,
                    };
                    self.trace.record_apply(origin, dst);
                }
            }
            self.trace.record_apply(id, dst);
            self.metrics.applies += 1;
            if let Some(&issued) = self.issue_time.get(&id) {
                let vis = t.saturating_sub(issued);
                self.metrics.total_visibility += vis;
                self.metrics.visibility_samples += 1;
                self.metrics.max_visibility = self.metrics.max_visibility.max(vis);
            }
            if let Some(transit) = a.msg.transit.clone() {
                if transit.final_dst == dst {
                    // Final hop: apply the logical write (already recorded
                    // in the trace above, before the hop's own apply).
                    let local = if dst == ReplicaId::new(0) {
                        self.twin
                    } else {
                        transit.register
                    };
                    self.replicas[dst.index()].store_local(local, transit.value.clone());
                    if let Some(issued) = self.transit_issue.remove(&transit.origin) {
                        let vis = t.saturating_sub(issued);
                        self.metrics.total_visibility += vis;
                        self.metrics.visibility_samples += 1;
                        self.metrics.max_visibility = self.metrics.max_visibility.max(vis);
                    }
                } else {
                    self.send_transit_hop(dst, transit);
                }
            }
        }
        true
    }

    /// Runs until quiescence.
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    /// True if nothing is in flight or pending.
    pub fn is_settled(&self) -> bool {
        self.net.is_quiescent() && self.replicas.iter().all(|r| r.pending_count() == 0)
    }

    /// Checks the trace against the *logical* ring placement.
    pub fn check(&self) -> CheckReport {
        check(&self.trace, &self.logical)
    }

    /// Metrics so far.
    pub fn metrics(&self) -> &SystemMetrics {
        &self.metrics
    }

    /// Current simulated time.
    pub fn now(&self) -> u64 {
        self.net.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{System, TrackerKind};
    use prcc_sharegraph::topology;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }

    #[test]
    fn broken_ring_has_tree_sized_timestamps() {
        let n = 6;
        let routed = RoutedRing::new(n, DelayModel::Fixed(1), 0);
        let counters = routed.timestamp_counters();
        // Unbroken ring: every replica tracks 2n = 12 counters.
        let plain = System::builder(topology::ring(n))
            .tracker(TrackerKind::EdgeIndexed(LoopConfig::EXHAUSTIVE))
            .build();
        let plain_counters = plain.timestamp_counters();
        assert!(plain_counters.iter().all(|&c| c == 2 * n));
        // Broken ring (a path): interior replicas track 2·2 = 4... but the
        // virtual registers double edge multiplicity, not edge count —
        // counters are per *edge*, so interior = 4, endpoints = 2.
        for (i, &c) in counters.iter().enumerate() {
            let expected = if i == 0 || i == n - 1 { 2 } else { 4 };
            assert_eq!(c, expected, "replica {i}");
            assert!(c < plain_counters[i]);
        }
    }

    #[test]
    fn unbroken_registers_flow_directly() {
        let mut ring = RoutedRing::new(5, DelayModel::Fixed(1), 1);
        // Register 1 is shared by replicas 1 and 2 — untouched by the
        // break.
        ring.write(r(1), x(1), Value::from(7u64));
        ring.run_to_quiescence();
        assert!(ring.is_settled());
        assert_eq!(ring.read(r(2), x(1)), Some(&Value::from(7u64)));
        assert!(ring.check().is_consistent());
    }

    #[test]
    fn broken_register_routes_to_far_endpoint() {
        let n = 5;
        let mut ring = RoutedRing::new(n, DelayModel::Fixed(1), 2);
        let broken = ring.broken_register();
        // Write at replica n−1 (holder of the original copy).
        ring.write(r((n - 1) as u32), broken, Value::from(42u64));
        ring.run_to_quiescence();
        assert!(ring.is_settled());
        // Replica 0 sees the value through the transit chain.
        assert_eq!(ring.read(r(0), broken), Some(&Value::from(42u64)));
        let rep = ring.check();
        assert!(rep.is_consistent(), "{:?}", rep.violations);
        // And the reverse direction.
        ring.write(r(0), broken, Value::from(43u64));
        ring.run_to_quiescence();
        assert_eq!(
            ring.read(r((n - 1) as u32), broken),
            Some(&Value::from(43u64))
        );
    }

    #[test]
    fn transit_latency_exceeds_direct_latency() {
        let n = 6;
        let mut ring = RoutedRing::new(n, DelayModel::Fixed(10), 3);
        // Direct write on an unbroken edge.
        ring.write(r(1), x(1), Value::from(1u64));
        ring.run_to_quiescence();
        let direct_max = ring.metrics().max_visibility;
        // Routed write crosses n−1 hops.
        ring.write(r((n - 1) as u32), ring.broken_register(), Value::from(2u64));
        ring.run_to_quiescence();
        let routed_max = ring.metrics().max_visibility;
        assert!(routed_max >= direct_max * ((n - 1) as u64) / 2);
    }

    #[test]
    fn causal_chain_through_transit_respected() {
        // Writes around the ring with causal chains crossing the broken
        // edge; run with adversarial delays across seeds.
        let n = 5;
        for seed in 0..10 {
            let mut ring = RoutedRing::new(n, DelayModel::Uniform { min: 1, max: 60 }, seed);
            for round in 0..3u64 {
                for i in 0..n as u32 {
                    // Each replica writes one register it logically holds.
                    ring.write(r(i), x(i), Value::from(round));
                }
            }
            ring.run_to_quiescence();
            assert!(ring.is_settled(), "seed {seed}");
            let rep = ring.check();
            assert!(rep.is_consistent(), "seed {seed}: {:?}", rep.violations);
        }
    }

    #[test]
    #[should_panic(expected = "not logically stored")]
    fn write_requires_logical_holder() {
        let mut ring = RoutedRing::new(4, DelayModel::Fixed(1), 0);
        ring.write(r(2), x(0), Value::from(0u64));
    }
}
