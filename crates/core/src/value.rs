//! Register values.

use std::fmt;

/// The value held by a shared register.
///
/// The paper treats values as opaque; a small enum keeps examples
/// realistic (counters, strings, blobs) without making every type in the
/// workspace generic.
///
/// # Examples
///
/// ```
/// use prcc_core::Value;
/// let v = Value::from(42u64);
/// assert_eq!(v.as_u64(), Some(42));
/// let s = Value::from("post: hello");
/// assert_eq!(s.as_str(), Some("post: hello"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// An unsigned integer.
    U64(u64),
    /// A UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

impl Value {
    /// The integer value, if this is a `U64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The payload size in bytes (used by message accounting).
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::U64(_) => 8,
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::U64(0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7u64).as_u64(), Some(7));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(String::from("y")).as_str(), Some("y"));
        assert_eq!(Value::from(vec![1u8, 2]).size_bytes(), 2);
        assert_eq!(Value::from("abc").as_u64(), None);
        assert_eq!(Value::from(1u64).as_str(), None);
    }

    #[test]
    fn sizes() {
        assert_eq!(Value::U64(0).size_bytes(), 8);
        assert_eq!(Value::Str("abcd".into()).size_bytes(), 4);
    }

    #[test]
    fn display() {
        assert_eq!(Value::U64(3).to_string(), "3");
        assert_eq!(Value::Str("hi".into()).to_string(), "\"hi\"");
        assert_eq!(Value::Bytes(vec![0; 5]).to_string(), "<5 bytes>");
        assert_eq!(Value::default(), Value::U64(0));
    }
}
