//! A high-throughput client-serving tier over [`ThreadedCluster`].
//!
//! The paper's client-server extension (§6) lets clients roam between
//! replicas while keeping the session guarantees implied by causal
//! consistency. The lockstep [`ClientServerSystem`](crate::ClientServerSystem)
//! reproduces that protocol faithfully — one client timestamp `μ_c`
//! advanced and merged per request — but serves one request per
//! simulated round. This module is the *deployment-shaped* counterpart:
//! tens of thousands of concurrent sessions multiplexed onto the
//! threaded cluster, engineered so the common case touches no replica
//! lock at all.
//!
//! # Architecture
//!
//! * **Sharded session tables.** Per-session guarantee state lives in
//!   [`ServingConfig::table_shards`] lock-striped shards keyed by
//!   session id. A session's state is a handful of per-register
//!   dependencies ([`ServingConfig::dep_cap`]-bounded), *not* a per-op
//!   log — state stays O(1) in the number of ops issued.
//! * **Partial-replication-aware routing.** Each session attaches to a
//!   deterministic window of [`ServingConfig::attach_span`] replicas
//!   (its `R_c`). An op routes to the first attach replica storing the
//!   register; a register stored nowhere in the window detours to an
//!   arbitrary holder — the analogue of the paper's routed-update path —
//!   and is counted in [`ServingStats::ops_forwarded`].
//! * **Lock-free guarantee enforcement.** Replicas publish an immutable
//!   [`ReplicaView`] (store + provenance + applied frontier) on every
//!   state change. A read is served from the first candidate whose
//!   frontier *covers* both components of the session's dependency on
//!   that register — read-your-writes and monotonic reads hold by the
//!   covering argument below, and the read never enqueues into a
//!   replica thread.
//! * **Write-ingress coalescing.** Worker handles buffer writes per
//!   target replica and ship them as one [`WriteMany`] command — one
//!   channel round trip and one snapshot publish per
//!   [`ServingConfig::write_batch`] client writes, feeding the
//!   cluster's sender-side batch pipeline.
//!
//! # Why covering is sound
//!
//! Let `d` be the session's dependency on register `x` (its own last
//! write and last observation, both updates *on `x`*). Every serving
//! candidate for `x` stores `x`. If the candidate's published frontier
//! covers `d`, the candidate has applied `d`; causal delivery means no
//! update happened-before `d` can be applied after it, and writes to one
//! register are applied in causal order — so the candidate's published
//! value of `x` is never causally older than `d`. Observing it violates
//! neither read-your-writes nor monotonic reads. The verdict is checked
//! from the trace, not trusted: drive the tier, then hand its recorded
//! [`SessionEvent`]s to [`check_sessions`](prcc_checker::check_sessions).
//!
//! [`WriteMany`]: ThreadedCluster::write

use crate::runtime::{ReplicaView, ThreadedCluster};
use crate::stats::LatencyStats;
use crate::value::Value;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use prcc_checker::{SessionEvent, UpdateId};
use prcc_sharegraph::{ClientId, RegisterId, ReplicaId, ShareGraph};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`ServingTier`].
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Lock stripes in the session table. More stripes, less contention
    /// between workers that share sessions (workers with disjoint
    /// session sets never contend regardless).
    pub table_shards: usize,
    /// Replicas per session attach set `R_c` (clamped to the cluster
    /// size).
    pub attach_span: usize,
    /// Client writes coalesced per [`Cmd::WriteMany`] shipment. Larger
    /// batches amortize the command channel; smaller ones tighten write
    /// latency.
    ///
    /// [`Cmd::WriteMany`]: ThreadedCluster
    pub write_batch: usize,
    /// Soft cap on per-session dependency entries. Above it, entries
    /// every holder already covers are evicted (they can never block a
    /// future read). Uncovered entries are *never* dropped — the cap
    /// bounds memory without weakening guarantees.
    pub dep_cap: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            table_shards: 64,
            attach_span: 2,
            write_batch: 32,
            dep_cap: 64,
        }
    }
}

/// One session's dependency on one register: the update produced by the
/// session's last write of it, and the update observed by its last read
/// of it. A read of the register is safe at any replica whose view
/// covers *both* (a newer observation must not stand in for the
/// session's own write — the two may be concurrent).
#[derive(Debug, Clone, Copy, Default)]
struct Dep {
    wrote: Option<UpdateId>,
    read: Option<UpdateId>,
}

impl Dep {
    fn covered_by(&self, view: &ReplicaView) -> bool {
        self.wrote.is_none_or(|u| view.covers(u)) && self.read.is_none_or(|u| view.covers(u))
    }
}

/// Per-session guarantee state: its register dependencies. Bounded by
/// [`ServingConfig::dep_cap`] plus whatever is still uncovered — O(1) in
/// ops issued.
#[derive(Debug, Default)]
struct SessionState {
    deps: HashMap<RegisterId, Dep>,
}

/// Monotonic counters the tier exposes; see [`ServingStats`] for the
/// snapshot shape.
#[derive(Debug, Default)]
struct TierCounters {
    ops_routed_local: AtomicU64,
    ops_forwarded: AtomicU64,
    ryw_blocks: AtomicU64,
    mr_blocks: AtomicU64,
    dep_evictions: AtomicU64,
}

/// A point-in-time snapshot of serving-tier counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Ops served inside the session's attach set.
    pub ops_routed_local: u64,
    /// Ops detoured to a holder outside the attach set (the register is
    /// not stored anywhere in `R_c` — the routed-update analogue).
    pub ops_forwarded: u64,
    /// Reads that found the session's own-write dependency uncovered at
    /// the primary candidate and had to fall over or wait.
    pub ryw_blocks: u64,
    /// Reads blocked on the observation (monotonic-reads) dependency
    /// instead.
    pub mr_blocks: u64,
    /// Dependency entries evicted because every holder already covered
    /// them.
    pub dep_evictions: u64,
}

/// What one worker (or the whole run, after merging) collected:
/// the served-op event log for checking plus client-visible latency.
#[derive(Debug, Default)]
pub struct Collected {
    /// Served ops in per-session order — feed to
    /// [`check_sessions`](prcc_checker::check_sessions).
    pub events: Vec<SessionEvent>,
    /// Client-visible read latency (nanoseconds).
    pub read_lat: LatencyStats,
    /// Client-visible write latency (nanoseconds; completion-to-visible,
    /// includes coalescing residency).
    pub write_lat: LatencyStats,
    /// Total ops served.
    pub ops: u64,
}

impl Collected {
    /// Folds another worker's collection into this one. Event order
    /// within a session is preserved because each session is owned by
    /// exactly one worker; interleaving between sessions is irrelevant
    /// to the checker.
    pub fn absorb(&mut self, other: Collected) {
        self.events.extend(other.events);
        self.read_lat.absorb(other.read_lat);
        self.write_lat.absorb(other.write_lat);
        self.ops += other.ops;
    }
}

/// The deterministic attach set `R_c` of session `sid`: a window of
/// `span` consecutive replicas starting at `sid mod n`. Public so the
/// lockstep oracle can reproduce the tier's routing exactly.
pub fn attach_set(sid: u64, num_replicas: usize, span: usize) -> Vec<ReplicaId> {
    let n = num_replicas as u64;
    let span = span.clamp(1, num_replicas);
    (0..span as u64)
        .map(|k| ReplicaId::new(((sid + k) % n) as u32))
        .collect()
}

/// Routes one op of session `sid` on register `x`: the first attach
/// replica storing `x`, else an arbitrary holder (`local == false` — the
/// forwarded detour). Public for oracle reuse.
pub fn route(graph: &ShareGraph, sid: u64, span: usize, x: RegisterId) -> (ReplicaId, bool) {
    let p = graph.placement();
    for r in attach_set(sid, graph.num_replicas(), span) {
        if p.stores(r, x) {
            return (r, true);
        }
    }
    (p.holders(x)[0], false)
}

/// A serving tier multiplexing many client sessions onto a borrowed
/// [`ThreadedCluster`]. Shared by reference across worker threads; all
/// hot-path state is either striped, atomic, or worker-local.
///
/// # Examples
///
/// ```
/// use prcc_core::serving::{ServingConfig, ServingTier};
/// use prcc_core::runtime::ThreadedCluster;
/// use prcc_core::Value;
/// use prcc_net::DelayModel;
/// use prcc_sharegraph::{topology, RegisterId};
///
/// let cluster = ThreadedCluster::new(topology::clique_full(4, 2), DelayModel::Fixed(1), 7);
/// let tier = ServingTier::new(&cluster, ServingConfig::default());
/// let mut w = tier.worker();
/// w.write(3, RegisterId::new(0), Value::from(9u64));
/// let (v, _) = w.read(3, RegisterId::new(0), 0);
/// assert_eq!(v, Some(Value::from(9u64)));
/// let collected = w.finish();
/// assert_eq!(collected.ops, 2);
/// ```
#[derive(Debug)]
pub struct ServingTier<'c> {
    cluster: &'c ThreadedCluster,
    cfg: ServingConfig,
    shards: Vec<Mutex<HashMap<u64, SessionState>>>,
    counters: TierCounters,
}

impl<'c> ServingTier<'c> {
    /// Builds a tier over `cluster`.
    pub fn new(cluster: &'c ThreadedCluster, cfg: ServingConfig) -> Self {
        let shards = (0..cfg.table_shards.max(1))
            .map(|_| Mutex::new(HashMap::new()))
            .collect();
        ServingTier {
            cluster,
            cfg,
            shards,
            counters: TierCounters::default(),
        }
    }

    /// The tier's configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.cfg
    }

    /// A snapshot of the tier counters.
    pub fn stats(&self) -> ServingStats {
        ServingStats {
            ops_routed_local: self.counters.ops_routed_local.load(Ordering::Relaxed),
            ops_forwarded: self.counters.ops_forwarded.load(Ordering::Relaxed),
            ryw_blocks: self.counters.ryw_blocks.load(Ordering::Relaxed),
            mr_blocks: self.counters.mr_blocks.load(Ordering::Relaxed),
            dep_evictions: self.counters.dep_evictions.load(Ordering::Relaxed),
        }
    }

    /// Creates a worker handle. Spawn one per driver thread; a session
    /// must be driven by a single worker at a time (its ops need a
    /// service order).
    pub fn worker(&self) -> ServingWorker<'c, '_> {
        let (reply_tx, reply_rx) = bounded(1 << 16);
        ServingWorker {
            tier: self,
            bufs: vec![Vec::new(); self.cluster.graph().num_replicas()],
            tokens: HashMap::new(),
            next_token: 0,
            in_flight: HashMap::new(),
            reply_tx,
            reply_rx,
            out: Collected::default(),
        }
    }

    fn shard_of(&self, sid: u64) -> &Mutex<HashMap<u64, SessionState>> {
        &self.shards[(sid as usize) % self.shards.len()]
    }

    /// Runs `f` on the session's state (created on first touch).
    fn with_session<T>(&self, sid: u64, f: impl FnOnce(&mut SessionState) -> T) -> T {
        let mut shard = self.shard_of(sid).lock();
        f(shard.entry(sid).or_default())
    }

    /// Evicts dependency entries every holder of their register already
    /// covers — such entries can never block a future read, so dropping
    /// them is guarantee-preserving. Called when a session exceeds
    /// [`ServingConfig::dep_cap`].
    fn evict_covered(&self, state: &mut SessionState) {
        let p = self.cluster.graph().placement();
        let mut views: HashMap<ReplicaId, Arc<ReplicaView>> = HashMap::new();
        let before = state.deps.len();
        state.deps.retain(|&x, dep| {
            !p.holders(x).iter().all(|&h| {
                let v = views
                    .entry(h)
                    .or_insert_with(|| self.cluster.store_snapshot(h));
                dep.covered_by(v)
            })
        });
        let evicted = (before - state.deps.len()) as u64;
        if evicted > 0 {
            self.counters
                .dep_evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
    }
}

/// A write shipped but not yet completed: which session issued it, on
/// which register, and when it entered the tier.
#[derive(Debug)]
struct PendingWrite {
    sid: u64,
    register: RegisterId,
    start: Instant,
}

/// One driver thread's handle onto the tier: per-replica write buffers,
/// the completion channel, and thread-local event/latency collection.
/// Created by [`ServingTier::worker`]; call [`finish`](Self::finish)
/// when done to flush and collect.
#[derive(Debug)]
pub struct ServingWorker<'c, 't> {
    tier: &'t ServingTier<'c>,
    /// Per-target-replica coalescing buffers of (token, register, value).
    bufs: Vec<Vec<(u64, RegisterId, Value)>>,
    /// token → pending-write bookkeeping.
    tokens: HashMap<u64, PendingWrite>,
    next_token: u64,
    /// Sessions with an outstanding write → its token. At most one per
    /// session: the session's next op drains it first, so the write's
    /// `UpdateId` is always known before a dependent read routes.
    in_flight: HashMap<u64, u64>,
    reply_tx: Sender<(u64, UpdateId)>,
    reply_rx: Receiver<(u64, UpdateId)>,
    out: Collected,
}

/// How long a read spins on an uncovered dependency before the run is
/// declared wedged. Generous: covering requires only that one candidate
/// replica applies one update.
const STALL_DEADLINE: Duration = Duration::from_secs(30);

impl ServingWorker<'_, '_> {
    /// Serves a write for session `sid`: routes it, coalesces it into
    /// the target replica's buffer, and returns. Completion (and the
    /// session's dependency update) happens asynchronously via
    /// [`poll`](Self::poll) / the session's next op.
    pub fn write(&mut self, sid: u64, x: RegisterId, v: Value) {
        self.poll();
        self.drain_session(sid);
        let tier = self.tier;
        let (target, local) = route(tier.cluster.graph(), sid, tier.cfg.attach_span, x);
        let ctr = if local {
            &tier.counters.ops_routed_local
        } else {
            &tier.counters.ops_forwarded
        };
        ctr.fetch_add(1, Ordering::Relaxed);
        let token = self.next_token;
        self.next_token += 1;
        self.tokens.insert(
            token,
            PendingWrite {
                sid,
                register: x,
                start: Instant::now(),
            },
        );
        self.in_flight.insert(sid, token);
        self.bufs[target.index()].push((token, x, v));
        if self.bufs[target.index()].len() >= tier.cfg.write_batch {
            self.flush_replica(target);
        }
        self.out.ops += 1;
    }

    /// Serves a read for session `sid` on register `x`, returning the
    /// value and which replica served it. `roam` rotates the preferred
    /// candidate among the attach replicas storing `x`, modelling a
    /// client roaming within its `R_c`.
    ///
    /// The fast path is entirely lock-free past the session-table
    /// stripe: candidates' published [`ReplicaView`]s are checked for
    /// dependency covering; the first covering view serves. If none
    /// covers (a just-shipped dependency still in flight), the read
    /// spins — never enqueues — until one does.
    pub fn read(&mut self, sid: u64, x: RegisterId, roam: u64) -> (Option<Value>, ReplicaId) {
        self.poll();
        self.drain_session(sid);
        let tier = self.tier;
        let graph = tier.cluster.graph();
        let p = graph.placement();
        // Candidate order: attach replicas storing x (rotated by roam),
        // then every holder (the forwarded detour).
        let mut candidates: Vec<(ReplicaId, bool)> = Vec::new();
        let attach: Vec<ReplicaId> = attach_set(sid, graph.num_replicas(), tier.cfg.attach_span)
            .into_iter()
            .filter(|&r| p.stores(r, x))
            .collect();
        if !attach.is_empty() {
            let start = (roam as usize) % attach.len();
            for k in 0..attach.len() {
                candidates.push((attach[(start + k) % attach.len()], true));
            }
        }
        for &h in p.holders(x) {
            if !candidates.iter().any(|&(c, _)| c == h) {
                candidates.push((h, false));
            }
        }
        let dep = tier.with_session(sid, |s| s.deps.get(&x).copied().unwrap_or_default());
        let started = Instant::now();
        let mut blocked = false;
        let (view, server, local) = loop {
            let mut served = None;
            for &(r, local) in &candidates {
                let view = tier.cluster.store_snapshot(r);
                if dep.covered_by(&view) {
                    served = Some((view, r, local));
                    break;
                }
            }
            if let Some(hit) = served {
                break hit;
            }
            if !blocked {
                blocked = true;
                // Classify the stall once: own-write dependency still in
                // flight is a read-your-writes block, otherwise the
                // observation (monotonic-reads) dependency is behind.
                let primary = tier.cluster.store_snapshot(candidates[0].0);
                let ctr = if dep.wrote.is_some_and(|u| !primary.covers(u)) {
                    &tier.counters.ryw_blocks
                } else {
                    &tier.counters.mr_blocks
                };
                ctr.fetch_add(1, Ordering::Relaxed);
            }
            assert!(
                started.elapsed() < STALL_DEADLINE,
                "read of {x} for session {sid} wedged on dependency {dep:?}"
            );
            std::thread::sleep(Duration::from_micros(5));
        };
        let ctr = if local {
            &tier.counters.ops_routed_local
        } else {
            &tier.counters.ops_forwarded
        };
        ctr.fetch_add(1, Ordering::Relaxed);
        let value = view.get(&x).cloned();
        let observed = if value.is_some() {
            view.source_of(x)
        } else {
            None
        };
        if let Some(obs) = observed {
            tier.with_session(sid, |s| {
                s.deps.entry(x).or_default().read = Some(obs);
                if s.deps.len() > tier.cfg.dep_cap {
                    tier.evict_covered(s);
                }
            });
        }
        self.out.events.push(SessionEvent::Read {
            client: ClientId::new(sid as u32),
            register: x,
            observed,
        });
        self.out
            .read_lat
            .record(started.elapsed().as_nanos() as u64);
        self.out.ops += 1;
        (value, server)
    }

    /// Ships every non-empty write buffer now (end of a driver quantum).
    pub fn flush(&mut self) {
        for i in 0..self.bufs.len() {
            if !self.bufs[i].is_empty() {
                self.flush_replica(ReplicaId::new(i as u32));
            }
        }
    }

    /// Processes any write completions that have arrived, without
    /// blocking: updates session dependencies, records write events and
    /// latency, and releases the sessions' in-flight slots.
    pub fn poll(&mut self) {
        while let Ok((token, uid)) = self.reply_rx.try_recv() {
            self.complete(token, uid);
        }
    }

    /// Flushes remaining buffers, waits for every outstanding write to
    /// complete, and returns everything collected.
    pub fn finish(mut self) -> Collected {
        self.flush();
        while !self.tokens.is_empty() {
            match self.reply_rx.recv_timeout(STALL_DEADLINE) {
                Ok((token, uid)) => self.complete(token, uid),
                Err(_) => panic!("{} write completions never arrived", self.tokens.len()),
            }
        }
        self.out
    }

    fn flush_replica(&mut self, r: ReplicaId) {
        let ops = std::mem::take(&mut self.bufs[r.index()]);
        if !ops.is_empty() {
            self.tier
                .cluster
                .send_write_many(r, ops, self.reply_tx.clone());
        }
    }

    /// Blocks until session `sid` has no write in flight. Flushes first:
    /// a buffered write would otherwise never complete.
    fn drain_session(&mut self, sid: u64) {
        if !self.in_flight.contains_key(&sid) {
            return;
        }
        self.flush();
        let deadline = Instant::now() + STALL_DEADLINE;
        while self.in_flight.contains_key(&sid) {
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .expect("write completion never arrived");
            match self.reply_rx.recv_timeout(remaining) {
                Ok((token, uid)) => self.complete(token, uid),
                Err(_) => panic!("write completion for session {sid} never arrived"),
            }
        }
    }

    fn complete(&mut self, token: u64, uid: UpdateId) {
        let pw = self.tokens.remove(&token).expect("unknown write token");
        if self.in_flight.get(&pw.sid) == Some(&token) {
            self.in_flight.remove(&pw.sid);
        }
        let tier = self.tier;
        tier.with_session(pw.sid, |s| {
            let d = s.deps.entry(pw.register).or_default();
            // The session's own write is also its latest observation
            // (mirrors the checker's semantics).
            d.wrote = Some(uid);
            d.read = Some(uid);
            if s.deps.len() > tier.cfg.dep_cap {
                tier.evict_covered(s);
            }
        });
        self.out.events.push(SessionEvent::Write {
            client: ClientId::new(pw.sid as u32),
            update: uid,
            register: pw.register,
        });
        self.out
            .write_lat
            .record(pw.start.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_net::DelayModel;
    use prcc_sharegraph::topology;

    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }

    #[test]
    fn attach_set_is_deterministic_window() {
        assert_eq!(
            attach_set(6, 4, 2),
            vec![ReplicaId::new(2), ReplicaId::new(3)]
        );
        assert_eq!(
            attach_set(3, 4, 2),
            vec![ReplicaId::new(3), ReplicaId::new(0)]
        );
        // Span clamps to the cluster.
        assert_eq!(attach_set(0, 2, 5).len(), 2);
    }

    #[test]
    fn routing_prefers_attach_then_detours() {
        // ring(4): register i is shared by replicas i and i+1 mod 4.
        let g = topology::ring(4);
        // Session 0 attaches to {0, 1}; register 1 is stored at 1 — local.
        let (r, local) = route(&g, 0, 2, x(1));
        assert!(local);
        assert_eq!(r, ReplicaId::new(1));
        // Register 2 is stored at {2, 3}, outside session 0's window.
        let (r, local) = route(&g, 0, 2, x(2));
        assert!(!local);
        assert!(g.placement().stores(r, x(2)));
    }

    #[test]
    fn read_your_writes_through_the_tier() {
        let cluster = ThreadedCluster::new(topology::clique_full(4, 8), DelayModel::Fixed(1), 11);
        let tier = ServingTier::new(&cluster, ServingConfig::default());
        let mut w = tier.worker();
        for k in 0..50u64 {
            // One register per session: with no concurrent writer, a
            // session's read must return exactly its own last write (the
            // write's completion lands in the dependency set before the
            // read routes).
            let sid = k % 7;
            w.write(sid, x(sid as u32), Value::from(k));
            let (v, _) = w.read(sid, x(sid as u32), k);
            assert_eq!(v, Some(Value::from(k)));
        }
        let collected = w.finish();
        assert_eq!(collected.ops, 100);
        assert_eq!(collected.events.len(), 100);
        cluster.settle();
        assert!(cluster.check().is_consistent());
        let trace = cluster.trace_snapshot();
        assert!(prcc_checker::check_sessions(&trace, &collected.events).is_empty());
    }

    #[test]
    fn forwarded_ops_are_counted() {
        // path(3): replica 0 stores {0}, 1 stores {0,1,2}... actually
        // path placement: replica i stores registers of its incident
        // edges. Session 0 attaches to {0,1}; find a register outside.
        let g = topology::ring(6);
        let cluster = ThreadedCluster::new(g, DelayModel::Fixed(1), 3);
        let tier = ServingTier::new(&cluster, ServingConfig::default());
        let mut w = tier.worker();
        // Register 3 is held by replicas {2,3}, outside session 0's
        // attach window {0,1}.
        w.write(0, x(3), Value::from(1u64));
        let (v, _) = w.read(0, x(3), 0);
        assert_eq!(v, Some(Value::from(1u64)));
        w.finish();
        let stats = tier.stats();
        assert_eq!(stats.ops_forwarded, 2);
        assert_eq!(stats.ops_routed_local, 0);
    }

    #[test]
    fn session_state_stays_bounded() {
        let cluster = ThreadedCluster::new(topology::clique_full(4, 8), DelayModel::Fixed(0), 5);
        let cfg = ServingConfig {
            dep_cap: 4,
            ..ServingConfig::default()
        };
        let tier = ServingTier::new(&cluster, cfg);
        let mut w = tier.worker();
        for k in 0..2000u64 {
            w.write(0, x((k % 8) as u32), Value::from(k));
            w.read(0, x(((k + 3) % 8) as u32), k);
        }
        let collected = w.finish();
        // Dependency entries never exceed cap + registers touched since
        // the last eviction sweep — far below the 4000 ops issued.
        let entries = tier.with_session(0, |s| s.deps.len());
        assert!(entries <= 8, "deps grew to {entries}");
        assert!(tier.stats().dep_evictions > 0);
        cluster.settle();
        let trace = cluster.trace_snapshot();
        assert!(prcc_checker::check_sessions(&trace, &collected.events).is_empty());
    }

    #[test]
    fn concurrent_workers_preserve_session_guarantees() {
        let cluster = ThreadedCluster::new(topology::clique_full(4, 4), DelayModel::Fixed(1), 17);
        let tier = ServingTier::new(&cluster, ServingConfig::default());
        let collected = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4u64)
                .map(|wid| {
                    let tier = &tier;
                    s.spawn(move || {
                        let mut w = tier.worker();
                        for k in 0..200u64 {
                            // Worker wid owns sessions {wid, wid+4, ...}.
                            let sid = wid + 4 * (k % 3);
                            if k % 4 == 0 {
                                w.write(sid, x((k % 4) as u32), Value::from(wid * 1000 + k));
                            } else {
                                w.read(sid, x((k % 4) as u32), k);
                            }
                        }
                        w.finish()
                    })
                })
                .collect();
            let mut all = Collected::default();
            for h in handles {
                all.absorb(h.join().expect("worker"));
            }
            all
        });
        assert_eq!(collected.ops, 800);
        cluster.settle();
        assert!(cluster.check().is_consistent());
        let trace = cluster.trace_snapshot();
        assert!(
            prcc_checker::check_sessions(&trace, &collected.events).is_empty(),
            "session guarantees violated"
        );
    }
}
