//! A high-throughput client-serving tier over [`ThreadedCluster`].
//!
//! The paper's client-server extension (§6) lets clients roam between
//! replicas while keeping the session guarantees implied by causal
//! consistency. The lockstep [`ClientServerSystem`](crate::ClientServerSystem)
//! reproduces that protocol faithfully — one client timestamp `μ_c`
//! advanced and merged per request — but serves one request per
//! simulated round. This module is the *deployment-shaped* counterpart:
//! tens of thousands of concurrent sessions multiplexed onto the
//! threaded cluster, engineered so the common case touches no replica
//! lock at all.
//!
//! # Architecture
//!
//! * **Sharded session tables.** Per-session guarantee state lives in
//!   [`ServingConfig::table_shards`] lock-striped shards keyed by
//!   session id. A session's state is a handful of per-register
//!   dependencies ([`ServingConfig::dep_cap`]-bounded), *not* a per-op
//!   log — state stays O(1) in the number of ops issued.
//! * **Partial-replication-aware routing.** Each session attaches to a
//!   deterministic window of [`ServingConfig::attach_span`] replicas
//!   (its `R_c`). An op routes to the first attach replica storing the
//!   register; a register stored nowhere in the window detours to an
//!   arbitrary holder — the analogue of the paper's routed-update path —
//!   and is counted in [`ServingStats::ops_forwarded`].
//! * **Lock-free guarantee enforcement.** Replicas publish an immutable
//!   [`ReplicaView`] (store + provenance + applied frontier) on every
//!   state change. A read is served from the first candidate whose
//!   frontier *covers* both components of the session's dependency on
//!   that register — read-your-writes and monotonic reads hold by the
//!   covering argument below, and the read never enqueues into a
//!   replica thread.
//! * **Write-ingress coalescing.** Worker handles buffer writes per
//!   target replica and ship them as one [`WriteMany`] command — one
//!   channel round trip and one snapshot publish per
//!   [`ServingConfig::write_batch`] client writes, feeding the
//!   cluster's sender-side batch pipeline.
//! * **Fault tolerance.** When a session's target replica is inside a
//!   crash window the op fails over to another live holder — reads via
//!   [`route_live`] candidate skipping, writes via bounded re-route
//!   retries of per-op crash rejections — and the session's
//!   portable dependency state makes the guarantees hold across the
//!   move. Ops that cannot be served degrade to typed [`ServingError`]s
//!   (never a panic): blocked past [`ServingConfig::op_timeout`],
//!   every holder down, or shed by admission control at
//!   [`ServingConfig::max_in_flight`] outstanding writes.
//!
//! # Why covering is sound
//!
//! Let `d` be the session's dependency on register `x` (its own last
//! write and last observation, both updates *on `x`*). Every serving
//! candidate for `x` stores `x`. If the candidate's published frontier
//! covers `d`, the candidate has applied `d`; causal delivery means no
//! update happened-before `d` can be applied after it, and writes to one
//! register are applied in causal order — so the candidate's published
//! value of `x` is never causally older than `d`. Observing it violates
//! neither read-your-writes nor monotonic reads. The verdict is checked
//! from the trace, not trusted: drive the tier, then hand its recorded
//! [`SessionEvent`]s to [`check_sessions`](prcc_checker::check_sessions).
//!
//! [`WriteMany`]: ThreadedCluster::write

use crate::runtime::{ReplicaView, ThreadedCluster, WriteStatus};
use crate::stats::LatencyStats;
use crate::value::Value;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use prcc_checker::{SessionEvent, UpdateId};
use prcc_sharegraph::{ClientId, RegisterId, ReplicaId, ShareGraph};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`ServingTier`].
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Lock stripes in the session table. More stripes, less contention
    /// between workers that share sessions (workers with disjoint
    /// session sets never contend regardless).
    pub table_shards: usize,
    /// Replicas per session attach set `R_c` (clamped to the cluster
    /// size).
    pub attach_span: usize,
    /// Client writes coalesced per [`Cmd::WriteMany`] shipment. Larger
    /// batches amortize the command channel; smaller ones tighten write
    /// latency.
    ///
    /// [`Cmd::WriteMany`]: ThreadedCluster
    pub write_batch: usize,
    /// Soft cap on per-session dependency entries. Above it, entries
    /// every holder already covers are evicted (they can never block a
    /// future read). Uncovered entries are *never* dropped — the cap
    /// bounds memory without weakening guarantees.
    pub dep_cap: usize,
    /// How long an op may block — a read on an uncovered dependency, a
    /// session draining its in-flight write — before it degrades to
    /// [`ServingError::Timeout`] instead of wedging the worker.
    pub op_timeout: Duration,
    /// Admission-control watermark: a write arriving while this many
    /// writes are outstanding on the worker is shed with
    /// [`ServingError::Overloaded`] instead of queued. Kept below the
    /// completion channel's capacity so completions can never block a
    /// replica thread.
    pub max_in_flight: usize,
    /// Re-route attempts for a write rejected by a crashed replica
    /// before the (never-acked) write is abandoned.
    pub max_retries: u32,
    /// First step of the deterministic exponential backoff used while
    /// an op blocks (doubles per attempt, capped at one millisecond).
    pub backoff_base: Duration,
    /// How long a worker parks on its completion channel after flushing
    /// writes, waiting for the flushed batch to be acked. Parking —
    /// rather than submitting and racing on — bounds the in-flight
    /// window to roughly one batch and, on hosts with few cores, hands
    /// the CPU straight to the replica threads: an open-loop driver
    /// that never blocks can otherwise burn a full scheduler quantum
    /// (milliseconds) on snapshot reads while acked-but-unobserved
    /// completions age in the channel. Zero disables the wait.
    pub completion_wait: Duration,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            table_shards: 64,
            attach_span: 2,
            write_batch: 32,
            dep_cap: 64,
            op_timeout: Duration::from_secs(30),
            max_in_flight: 1 << 15,
            max_retries: 3,
            backoff_base: Duration::from_micros(5),
            completion_wait: Duration::from_micros(150),
        }
    }
}

/// Why the serving tier could not serve an op — the panic-free
/// degradation surface. Callers decide whether to retry, shed the
/// client request, or fail it upward; the tier stays live either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingError {
    /// The op stayed blocked past [`ServingConfig::op_timeout`]: a read
    /// dependency never became covered, or a write completion never
    /// arrived.
    Timeout {
        /// The register the op targeted.
        register: RegisterId,
    },
    /// Every replica that could serve the op is inside a crash window.
    ReplicaCrashed {
        /// The op's preferred (fault-free) target.
        replica: ReplicaId,
    },
    /// Admission control shed the op at the
    /// [`ServingConfig::max_in_flight`] watermark.
    Overloaded {
        /// Writes outstanding at the moment of rejection.
        in_flight: usize,
    },
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::Timeout { register } => {
                write!(f, "op on {register} timed out waiting for coverage")
            }
            ServingError::ReplicaCrashed { replica } => {
                write!(f, "every holder reachable from {replica} is crashed")
            }
            ServingError::Overloaded { in_flight } => {
                write!(f, "shed at {in_flight} writes in flight")
            }
        }
    }
}

impl std::error::Error for ServingError {}

/// One session's dependency on one register: the update produced by the
/// session's last write of it, and the update observed by its last read
/// of it. A read of the register is safe at any replica whose view
/// covers *both* (a newer observation must not stand in for the
/// session's own write — the two may be concurrent).
#[derive(Debug, Clone, Copy, Default)]
struct Dep {
    wrote: Option<UpdateId>,
    read: Option<UpdateId>,
}

impl Dep {
    fn covered_by(&self, view: &ReplicaView) -> bool {
        self.wrote.is_none_or(|u| view.covers(u)) && self.read.is_none_or(|u| view.covers(u))
    }
}

/// Per-session guarantee state: its register dependencies. Bounded by
/// [`ServingConfig::dep_cap`] plus whatever is still uncovered — O(1) in
/// ops issued.
#[derive(Debug, Default)]
struct SessionState {
    deps: HashMap<RegisterId, Dep>,
}

/// Monotonic counters the tier exposes; see [`ServingStats`] for the
/// snapshot shape.
#[derive(Debug, Default)]
struct TierCounters {
    ops_routed_local: AtomicU64,
    ops_forwarded: AtomicU64,
    ryw_blocks: AtomicU64,
    mr_blocks: AtomicU64,
    dep_evictions: AtomicU64,
    failovers: AtomicU64,
    ops_shed: AtomicU64,
    op_timeouts: AtomicU64,
    writes_abandoned: AtomicU64,
}

/// A point-in-time snapshot of serving-tier counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Ops served inside the session's attach set.
    pub ops_routed_local: u64,
    /// Ops detoured to a holder outside the attach set (the register is
    /// not stored anywhere in `R_c` — the routed-update analogue).
    pub ops_forwarded: u64,
    /// Reads that found the session's own-write dependency uncovered at
    /// the primary candidate and had to fall over or wait.
    pub ryw_blocks: u64,
    /// Reads blocked on the observation (monotonic-reads) dependency
    /// instead.
    pub mr_blocks: u64,
    /// Dependency entries evicted because every holder already covered
    /// them.
    pub dep_evictions: u64,
    /// Ops re-routed away from a crashed replica to another live holder
    /// in (or beyond) the session's attach window.
    pub failovers: u64,
    /// Writes shed by admission control at the
    /// [`ServingConfig::max_in_flight`] watermark.
    pub ops_shed: u64,
    /// Ops that degraded to [`ServingError::Timeout`] (or were still
    /// outstanding when the worker finished).
    pub op_timeouts: u64,
    /// Writes abandoned after [`ServingConfig::max_retries`] crash
    /// rejections with no live holder left — never acked, so no
    /// guarantee covers them.
    pub writes_abandoned: u64,
}

/// What one worker (or the whole run, after merging) collected:
/// the served-op event log for checking plus client-visible latency.
#[derive(Debug, Default)]
pub struct Collected {
    /// Served ops in per-session order — feed to
    /// [`check_sessions`](prcc_checker::check_sessions).
    pub events: Vec<SessionEvent>,
    /// Client-visible read latency (nanoseconds).
    pub read_lat: LatencyStats,
    /// Client-visible write latency (nanoseconds; completion-to-visible,
    /// includes coalescing residency).
    pub write_lat: LatencyStats,
    /// Client-visible latency of ops that failed over to a non-preferred
    /// replica (nanoseconds) — the cost of riding out a crash window.
    pub failover_lat: LatencyStats,
    /// Total ops served (acked).
    pub ops: u64,
    /// Ops that entered the tier but timed out or were abandoned before
    /// acking. Never recorded as events: the checker owes them nothing.
    pub failed: u64,
}

impl Collected {
    /// Folds another worker's collection into this one. Event order
    /// within a session is preserved because each session is owned by
    /// exactly one worker; interleaving between sessions is irrelevant
    /// to the checker.
    pub fn absorb(&mut self, other: Collected) {
        self.events.extend(other.events);
        self.read_lat.absorb(other.read_lat);
        self.write_lat.absorb(other.write_lat);
        self.failover_lat.absorb(other.failover_lat);
        self.ops += other.ops;
        self.failed += other.failed;
    }
}

/// The deterministic attach set `R_c` of session `sid`: a window of
/// `span` consecutive replicas starting at `sid mod n`. Public so the
/// lockstep oracle can reproduce the tier's routing exactly.
pub fn attach_set(sid: u64, num_replicas: usize, span: usize) -> Vec<ReplicaId> {
    let n = num_replicas as u64;
    let span = span.clamp(1, num_replicas);
    (0..span as u64)
        .map(|k| ReplicaId::new(((sid + k) % n) as u32))
        .collect()
}

/// Routes one op of session `sid` on register `x`: the first attach
/// replica storing `x`, else an arbitrary holder (`local == false` — the
/// forwarded detour). Public for oracle reuse.
pub fn route(graph: &ShareGraph, sid: u64, span: usize, x: RegisterId) -> (ReplicaId, bool) {
    let p = graph.placement();
    for r in attach_set(sid, graph.num_replicas(), span) {
        if p.stores(r, x) {
            return (r, true);
        }
    }
    (p.holders(x)[0], false)
}

/// Routes like [`route`] but skips replicas `is_down` reports dead —
/// the serving tier's failover path. Agrees with [`route`] whenever the
/// preferred target is up; returns `None` when every holder of `x` is
/// down (nothing can serve the op right now).
pub fn route_live(
    graph: &ShareGraph,
    sid: u64,
    span: usize,
    x: RegisterId,
    is_down: impl Fn(ReplicaId) -> bool,
) -> Option<(ReplicaId, bool)> {
    let p = graph.placement();
    for r in attach_set(sid, graph.num_replicas(), span) {
        if p.stores(r, x) && !is_down(r) {
            return Some((r, true));
        }
    }
    p.holders(x)
        .iter()
        .copied()
        .find(|&h| !is_down(h))
        .map(|h| (h, false))
}

/// A serving tier multiplexing many client sessions onto a borrowed
/// [`ThreadedCluster`]. Shared by reference across worker threads; all
/// hot-path state is either striped, atomic, or worker-local.
///
/// # Examples
///
/// ```
/// use prcc_core::serving::{ServingConfig, ServingTier};
/// use prcc_core::runtime::ThreadedCluster;
/// use prcc_core::Value;
/// use prcc_net::DelayModel;
/// use prcc_sharegraph::{topology, RegisterId};
///
/// let cluster = ThreadedCluster::new(topology::clique_full(4, 2), DelayModel::Fixed(1), 7);
/// let tier = ServingTier::new(&cluster, ServingConfig::default());
/// let mut w = tier.worker();
/// w.write(3, RegisterId::new(0), Value::from(9u64)).unwrap();
/// let (v, _) = w.read(3, RegisterId::new(0), 0).unwrap();
/// assert_eq!(v, Some(Value::from(9u64)));
/// let collected = w.finish();
/// assert_eq!(collected.ops, 2);
/// ```
#[derive(Debug)]
pub struct ServingTier<'c> {
    cluster: &'c ThreadedCluster,
    cfg: ServingConfig,
    shards: Vec<Mutex<HashMap<u64, SessionState>>>,
    counters: TierCounters,
}

impl<'c> ServingTier<'c> {
    /// Builds a tier over `cluster`.
    pub fn new(cluster: &'c ThreadedCluster, cfg: ServingConfig) -> Self {
        let shards = (0..cfg.table_shards.max(1))
            .map(|_| Mutex::new(HashMap::new()))
            .collect();
        ServingTier {
            cluster,
            cfg,
            shards,
            counters: TierCounters::default(),
        }
    }

    /// The tier's configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.cfg
    }

    /// A snapshot of the tier counters.
    pub fn stats(&self) -> ServingStats {
        ServingStats {
            ops_routed_local: self.counters.ops_routed_local.load(Ordering::Relaxed),
            ops_forwarded: self.counters.ops_forwarded.load(Ordering::Relaxed),
            ryw_blocks: self.counters.ryw_blocks.load(Ordering::Relaxed),
            mr_blocks: self.counters.mr_blocks.load(Ordering::Relaxed),
            dep_evictions: self.counters.dep_evictions.load(Ordering::Relaxed),
            failovers: self.counters.failovers.load(Ordering::Relaxed),
            ops_shed: self.counters.ops_shed.load(Ordering::Relaxed),
            op_timeouts: self.counters.op_timeouts.load(Ordering::Relaxed),
            writes_abandoned: self.counters.writes_abandoned.load(Ordering::Relaxed),
        }
    }

    /// Creates a worker handle. Spawn one per driver thread; a session
    /// must be driven by a single worker at a time (its ops need a
    /// service order).
    pub fn worker(&self) -> ServingWorker<'c, '_> {
        let (reply_tx, reply_rx) = bounded(1 << 16);
        ServingWorker {
            tier: self,
            bufs: vec![Vec::new(); self.cluster.graph().num_replicas()],
            tokens: HashMap::new(),
            next_token: 0,
            in_flight: HashMap::new(),
            reply_tx,
            reply_rx,
            out: Collected::default(),
        }
    }

    fn shard_of(&self, sid: u64) -> &Mutex<HashMap<u64, SessionState>> {
        &self.shards[(sid as usize) % self.shards.len()]
    }

    /// Runs `f` on the session's state (created on first touch).
    fn with_session<T>(&self, sid: u64, f: impl FnOnce(&mut SessionState) -> T) -> T {
        let mut shard = self.shard_of(sid).lock();
        f(shard.entry(sid).or_default())
    }

    /// Evicts dependency entries every holder of their register already
    /// covers — such entries can never block a future read, so dropping
    /// them is guarantee-preserving. Called when a session exceeds
    /// [`ServingConfig::dep_cap`].
    fn evict_covered(&self, state: &mut SessionState) {
        let p = self.cluster.graph().placement();
        let mut views: HashMap<ReplicaId, Arc<ReplicaView>> = HashMap::new();
        let before = state.deps.len();
        state.deps.retain(|&x, dep| {
            !p.holders(x).iter().all(|&h| {
                let v = views
                    .entry(h)
                    .or_insert_with(|| self.cluster.store_snapshot(h));
                dep.covered_by(v)
            })
        });
        let evicted = (before - state.deps.len()) as u64;
        if evicted > 0 {
            self.counters
                .dep_evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
    }
}

/// A write shipped but not yet completed: which session issued it, on
/// which register and value (kept for crash re-routes), when it entered
/// the tier, and how its failover budget stands.
#[derive(Debug)]
struct PendingWrite {
    sid: u64,
    register: RegisterId,
    value: Value,
    start: Instant,
    attempts: u32,
    failed_over: bool,
}

/// One driver thread's handle onto the tier: per-replica write buffers,
/// the completion channel, and thread-local event/latency collection.
/// Created by [`ServingTier::worker`]; call [`finish`](Self::finish)
/// when done to flush and collect.
#[derive(Debug)]
pub struct ServingWorker<'c, 't> {
    tier: &'t ServingTier<'c>,
    /// Per-target-replica coalescing buffers of (token, register, value).
    bufs: Vec<Vec<(u64, RegisterId, Value)>>,
    /// token → pending-write bookkeeping.
    tokens: HashMap<u64, PendingWrite>,
    next_token: u64,
    /// Sessions with an outstanding write → its token. At most one per
    /// session: the session's next op drains it first, so the write's
    /// `UpdateId` is always known before a dependent read routes.
    in_flight: HashMap<u64, u64>,
    reply_tx: Sender<(u64, WriteStatus)>,
    reply_rx: Receiver<(u64, WriteStatus)>,
    out: Collected,
}

impl ServingWorker<'_, '_> {
    /// Serves a write for session `sid`: routes it (failing over past a
    /// crashed preferred target), coalesces it into the target replica's
    /// buffer, and returns. Completion (and the session's dependency
    /// update) happens asynchronously via [`poll`](Self::poll) / the
    /// session's next op. Degrades instead of queueing unboundedly:
    /// [`ServingError::Overloaded`] past the admission watermark,
    /// [`ServingError::ReplicaCrashed`] when no holder is up.
    pub fn write(&mut self, sid: u64, x: RegisterId, v: Value) -> Result<(), ServingError> {
        self.poll();
        self.drain_session(sid)?;
        let tier = self.tier;
        if self.tokens.len() >= tier.cfg.max_in_flight {
            tier.counters.ops_shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServingError::Overloaded {
                in_flight: self.tokens.len(),
            });
        }
        let graph = tier.cluster.graph();
        let (preferred, mut local) = route(graph, sid, tier.cfg.attach_span, x);
        let mut target = preferred;
        let mut failed_over = false;
        if tier.cluster.is_crashed(preferred) {
            let Some((alt, alt_local)) = route_live(graph, sid, tier.cfg.attach_span, x, |r| {
                tier.cluster.is_crashed(r)
            }) else {
                return Err(ServingError::ReplicaCrashed { replica: preferred });
            };
            tier.counters.failovers.fetch_add(1, Ordering::Relaxed);
            (target, local, failed_over) = (alt, alt_local, true);
        }
        let ctr = if local {
            &tier.counters.ops_routed_local
        } else {
            &tier.counters.ops_forwarded
        };
        ctr.fetch_add(1, Ordering::Relaxed);
        let token = self.next_token;
        self.next_token += 1;
        self.tokens.insert(
            token,
            PendingWrite {
                sid,
                register: x,
                value: v.clone(),
                start: Instant::now(),
                attempts: 0,
                failed_over,
            },
        );
        self.in_flight.insert(sid, token);
        self.bufs[target.index()].push((token, x, v));
        if self.bufs[target.index()].len() >= tier.cfg.write_batch {
            self.flush_replica(target);
            self.await_completions();
        }
        Ok(())
    }

    /// Serves a read for session `sid` on register `x`, returning the
    /// value and which replica served it. `roam` rotates the preferred
    /// candidate among the attach replicas storing `x`, modelling a
    /// client roaming within its `R_c`.
    ///
    /// The fast path is entirely lock-free past the session-table
    /// stripe: candidates' published [`ReplicaView`]s are checked for
    /// dependency covering; the first covering view serves. Crashed
    /// candidates are skipped — the failover path — and if no live view
    /// covers (a just-shipped dependency still in flight), the read
    /// backs off exponentially — never enqueues — until one does, up to
    /// [`ServingConfig::op_timeout`].
    pub fn read(
        &mut self,
        sid: u64,
        x: RegisterId,
        roam: u64,
    ) -> Result<(Option<Value>, ReplicaId), ServingError> {
        self.poll();
        self.drain_session(sid)?;
        let tier = self.tier;
        let graph = tier.cluster.graph();
        let p = graph.placement();
        // Candidate order: attach replicas storing x (rotated by roam),
        // then every holder (the forwarded detour).
        let mut candidates: Vec<(ReplicaId, bool)> = Vec::new();
        let attach: Vec<ReplicaId> = attach_set(sid, graph.num_replicas(), tier.cfg.attach_span)
            .into_iter()
            .filter(|&r| p.stores(r, x))
            .collect();
        if !attach.is_empty() {
            let start = (roam as usize) % attach.len();
            for k in 0..attach.len() {
                candidates.push((attach[(start + k) % attach.len()], true));
            }
        }
        for &h in p.holders(x) {
            if !candidates.iter().any(|&(c, _)| c == h) {
                candidates.push((h, false));
            }
        }
        let dep = tier.with_session(sid, |s| s.deps.get(&x).copied().unwrap_or_default());
        let started = Instant::now();
        let deadline = started + tier.cfg.op_timeout;
        let mut blocked = false;
        let mut attempt = 0u32;
        let failed_over;
        let (view, server, local) = loop {
            let mut served = None;
            let mut skipped_preferred = false;
            for (i, &(r, local)) in candidates.iter().enumerate() {
                if tier.cluster.is_crashed(r) {
                    skipped_preferred |= i == 0;
                    continue;
                }
                let view = tier.cluster.store_snapshot(r);
                if dep.covered_by(&view) {
                    served = Some((view, r, local));
                    break;
                }
            }
            if let Some(hit) = served {
                failed_over = skipped_preferred;
                break hit;
            }
            if !blocked {
                blocked = true;
                // Classify the stall once: own-write dependency still in
                // flight is a read-your-writes block, otherwise the
                // observation (monotonic-reads) dependency is behind.
                let primary = tier.cluster.store_snapshot(candidates[0].0);
                let ctr = if dep.wrote.is_some_and(|u| !primary.covers(u)) {
                    &tier.counters.ryw_blocks
                } else {
                    &tier.counters.mr_blocks
                };
                ctr.fetch_add(1, Ordering::Relaxed);
            }
            if Instant::now() >= deadline {
                tier.counters.op_timeouts.fetch_add(1, Ordering::Relaxed);
                self.out.failed += 1;
                return Err(
                    if candidates.iter().all(|&(r, _)| tier.cluster.is_crashed(r)) {
                        ServingError::ReplicaCrashed {
                            replica: candidates[0].0,
                        }
                    } else {
                        ServingError::Timeout { register: x }
                    },
                );
            }
            std::thread::sleep(backoff(tier.cfg.backoff_base, attempt));
            attempt += 1;
        };
        let ctr = if local {
            &tier.counters.ops_routed_local
        } else {
            &tier.counters.ops_forwarded
        };
        ctr.fetch_add(1, Ordering::Relaxed);
        let value = view.get(&x).cloned();
        let observed = if value.is_some() {
            view.source_of(x)
        } else {
            None
        };
        if let Some(obs) = observed {
            tier.with_session(sid, |s| {
                s.deps.entry(x).or_default().read = Some(obs);
                if s.deps.len() > tier.cfg.dep_cap {
                    tier.evict_covered(s);
                }
            });
        }
        self.out.events.push(SessionEvent::Read {
            client: ClientId::new(sid as u32),
            register: x,
            observed,
        });
        let elapsed = started.elapsed().as_nanos() as u64;
        self.out.read_lat.record(elapsed);
        if failed_over {
            tier.counters.failovers.fetch_add(1, Ordering::Relaxed);
            self.out.failover_lat.record(elapsed);
        }
        self.out.ops += 1;
        Ok((value, server))
    }

    /// Ships every non-empty write buffer now (end of a driver quantum)
    /// and briefly parks for the flushed batch's acks.
    pub fn flush(&mut self) {
        let mut flushed = false;
        for i in 0..self.bufs.len() {
            if !self.bufs[i].is_empty() {
                self.flush_replica(ReplicaId::new(i as u32));
                flushed = true;
            }
        }
        if flushed {
            self.await_completions();
        }
    }

    /// Processes any write completions that have arrived, without
    /// blocking: updates session dependencies, records write events and
    /// latency, releases the sessions' in-flight slots, and re-routes
    /// writes a crashed replica rejected.
    pub fn poll(&mut self) {
        while let Ok((token, st)) = self.reply_rx.try_recv() {
            self.handle_completion(token, st);
        }
    }

    /// Flushes remaining buffers, waits for every outstanding write to
    /// complete (bounded by [`ServingConfig::op_timeout`] — leftovers
    /// are abandoned and counted, never panicked over), and returns
    /// everything collected.
    pub fn finish(mut self) -> Collected {
        self.flush();
        let deadline = Instant::now() + self.tier.cfg.op_timeout;
        while !self.tokens.is_empty() {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            match self.reply_rx.recv_timeout(remaining) {
                Ok((token, st)) => self.handle_completion(token, st),
                Err(_) => break,
            }
        }
        let leftovers = self.tokens.len() as u64;
        if leftovers > 0 {
            self.tier
                .counters
                .op_timeouts
                .fetch_add(leftovers, Ordering::Relaxed);
            self.out.failed += leftovers;
        }
        self.out
    }

    fn flush_replica(&mut self, r: ReplicaId) {
        let ops = std::mem::take(&mut self.bufs[r.index()]);
        if ops.is_empty() {
            return;
        }
        if let Err(returned) = self
            .tier
            .cluster
            .send_write_many(r, ops, self.reply_tx.clone())
        {
            // The replica thread is gone entirely (cluster shutting
            // down mid-run): treat each op like a crash rejection.
            for (token, _, _) in returned {
                self.retry_write(token);
            }
        }
    }

    /// Parks on the completion channel until at most a handful of
    /// flushed writes remain outstanding or
    /// [`ServingConfig::completion_wait`] elapses — see that knob for
    /// why submitting-and-racing-on is worse than waiting. The small
    /// residual window keeps the worker's submission pipelined with the
    /// replicas' apply work instead of serialising on the slowest ack.
    fn await_completions(&mut self) {
        let wait = self.tier.cfg.completion_wait;
        if wait.is_zero() || self.tokens.is_empty() {
            return;
        }
        // One bounded park for the first ack: the apply thread serves
        // the whole flushed batch in one drain burst, so once anything
        // arrives the rest is already in the channel — drain it without
        // blocking again and move on to serving reads.
        match self.reply_rx.recv_timeout(wait) {
            Ok((t, st)) => self.handle_completion(t, st),
            Err(_) => return,
        }
        while let Ok((t, st)) = self.reply_rx.try_recv() {
            self.handle_completion(t, st);
        }
    }

    /// Blocks until session `sid` has no write in flight. Flushes first:
    /// a buffered write would otherwise never complete. On timeout the
    /// wedged (never-acked) write is abandoned so the session can keep
    /// being served.
    fn drain_session(&mut self, sid: u64) -> Result<(), ServingError> {
        if !self.in_flight.contains_key(&sid) {
            return Ok(());
        }
        self.flush();
        let deadline = Instant::now() + self.tier.cfg.op_timeout;
        while let Some(&token) = self.in_flight.get(&sid) {
            let expired = deadline.checked_duration_since(Instant::now());
            let Some(remaining) = expired else {
                return Err(self.give_up(sid, token));
            };
            match self.reply_rx.recv_timeout(remaining) {
                Ok((t, st)) => self.handle_completion(t, st),
                Err(_) => return Err(self.give_up(sid, token)),
            }
        }
        Ok(())
    }

    /// Abandons session `sid`'s wedged in-flight write and produces the
    /// timeout error for it. The write was never acked (no event
    /// recorded), so no guarantee covers it; a completion arriving late
    /// is dropped by [`complete`](Self::complete).
    fn give_up(&mut self, sid: u64, token: u64) -> ServingError {
        self.tier
            .counters
            .op_timeouts
            .fetch_add(1, Ordering::Relaxed);
        let register = self
            .tokens
            .remove(&token)
            .map(|pw| pw.register)
            .unwrap_or_default();
        self.in_flight.remove(&sid);
        self.out.failed += 1;
        ServingError::Timeout { register }
    }

    fn handle_completion(&mut self, token: u64, st: WriteStatus) {
        match st {
            WriteStatus::Done(uid) => self.complete(token, uid),
            WriteStatus::Crashed => self.retry_write(token),
        }
    }

    /// Re-routes a write whose target rejected it from inside a crash
    /// window (or whose target thread is gone): deterministic
    /// exponential backoff, then an immediate re-ship to a live holder —
    /// the op is already late, so it skips the coalescing quantum. Past
    /// [`ServingConfig::max_retries`], or with no live holder left, the
    /// never-acked write is abandoned and counted.
    fn retry_write(&mut self, token: u64) {
        let tier = self.tier;
        let Some(pw) = self.tokens.get_mut(&token) else {
            return; // already completed or abandoned
        };
        pw.attempts += 1;
        pw.failed_over = true;
        let (sid, x, v, attempts) = (pw.sid, pw.register, pw.value.clone(), pw.attempts);
        let rerouted = (attempts <= tier.cfg.max_retries)
            .then(|| {
                route_live(tier.cluster.graph(), sid, tier.cfg.attach_span, x, |r| {
                    tier.cluster.is_crashed(r)
                })
            })
            .flatten();
        match rerouted {
            Some((target, _)) => {
                tier.counters.failovers.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff(tier.cfg.backoff_base, attempts));
                self.bufs[target.index()].push((token, x, v));
                self.flush_replica(target);
            }
            None => {
                self.tokens.remove(&token);
                if self.in_flight.get(&sid) == Some(&token) {
                    self.in_flight.remove(&sid);
                }
                tier.counters
                    .writes_abandoned
                    .fetch_add(1, Ordering::Relaxed);
                self.out.failed += 1;
            }
        }
    }

    fn complete(&mut self, token: u64, uid: UpdateId) {
        // A write abandoned at timeout may still complete late; it was
        // never acked, so the completion is dropped.
        let Some(pw) = self.tokens.remove(&token) else {
            return;
        };
        if self.in_flight.get(&pw.sid) == Some(&token) {
            self.in_flight.remove(&pw.sid);
        }
        let tier = self.tier;
        tier.with_session(pw.sid, |s| {
            let d = s.deps.entry(pw.register).or_default();
            // The session's own write is also its latest observation
            // (mirrors the checker's semantics).
            d.wrote = Some(uid);
            d.read = Some(uid);
            if s.deps.len() > tier.cfg.dep_cap {
                tier.evict_covered(s);
            }
        });
        self.out.events.push(SessionEvent::Write {
            client: ClientId::new(pw.sid as u32),
            update: uid,
            register: pw.register,
        });
        let elapsed = pw.start.elapsed().as_nanos() as u64;
        self.out.write_lat.record(elapsed);
        if pw.failed_over {
            self.out.failover_lat.record(elapsed);
        }
        self.out.ops += 1;
    }
}

/// Deterministic exponential backoff: `base << attempt`, capped at one
/// millisecond so a long stall keeps probing often enough to notice a
/// restart promptly.
fn backoff(base: Duration, attempt: u32) -> Duration {
    (base * (1u32 << attempt.min(8))).min(Duration::from_millis(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_net::DelayModel;
    use prcc_sharegraph::topology;

    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }

    #[test]
    fn attach_set_is_deterministic_window() {
        assert_eq!(
            attach_set(6, 4, 2),
            vec![ReplicaId::new(2), ReplicaId::new(3)]
        );
        assert_eq!(
            attach_set(3, 4, 2),
            vec![ReplicaId::new(3), ReplicaId::new(0)]
        );
        // Span clamps to the cluster.
        assert_eq!(attach_set(0, 2, 5).len(), 2);
    }

    #[test]
    fn routing_prefers_attach_then_detours() {
        // ring(4): register i is shared by replicas i and i+1 mod 4.
        let g = topology::ring(4);
        // Session 0 attaches to {0, 1}; register 1 is stored at 1 — local.
        let (r, local) = route(&g, 0, 2, x(1));
        assert!(local);
        assert_eq!(r, ReplicaId::new(1));
        // Register 2 is stored at {2, 3}, outside session 0's window.
        let (r, local) = route(&g, 0, 2, x(2));
        assert!(!local);
        assert!(g.placement().stores(r, x(2)));
    }

    #[test]
    fn read_your_writes_through_the_tier() {
        let cluster = ThreadedCluster::new(topology::clique_full(4, 8), DelayModel::Fixed(1), 11);
        let tier = ServingTier::new(&cluster, ServingConfig::default());
        let mut w = tier.worker();
        for k in 0..50u64 {
            // One register per session: with no concurrent writer, a
            // session's read must return exactly its own last write (the
            // write's completion lands in the dependency set before the
            // read routes).
            let sid = k % 7;
            w.write(sid, x(sid as u32), Value::from(k)).unwrap();
            let (v, _) = w.read(sid, x(sid as u32), k).unwrap();
            assert_eq!(v, Some(Value::from(k)));
        }
        let collected = w.finish();
        assert_eq!(collected.ops, 100);
        assert_eq!(collected.events.len(), 100);
        cluster.settle();
        assert!(cluster.check().is_consistent());
        let trace = cluster.trace_snapshot();
        assert!(prcc_checker::check_sessions(&trace, &collected.events).is_empty());
    }

    #[test]
    fn forwarded_ops_are_counted() {
        // path(3): replica 0 stores {0}, 1 stores {0,1,2}... actually
        // path placement: replica i stores registers of its incident
        // edges. Session 0 attaches to {0,1}; find a register outside.
        let g = topology::ring(6);
        let cluster = ThreadedCluster::new(g, DelayModel::Fixed(1), 3);
        let tier = ServingTier::new(&cluster, ServingConfig::default());
        let mut w = tier.worker();
        // Register 3 is held by replicas {2,3}, outside session 0's
        // attach window {0,1}.
        w.write(0, x(3), Value::from(1u64)).unwrap();
        let (v, _) = w.read(0, x(3), 0).unwrap();
        assert_eq!(v, Some(Value::from(1u64)));
        w.finish();
        let stats = tier.stats();
        assert_eq!(stats.ops_forwarded, 2);
        assert_eq!(stats.ops_routed_local, 0);
    }

    #[test]
    fn session_state_stays_bounded() {
        let cluster = ThreadedCluster::new(topology::clique_full(4, 8), DelayModel::Fixed(0), 5);
        let cfg = ServingConfig {
            dep_cap: 4,
            ..ServingConfig::default()
        };
        let tier = ServingTier::new(&cluster, cfg);
        let mut w = tier.worker();
        for k in 0..2000u64 {
            w.write(0, x((k % 8) as u32), Value::from(k)).unwrap();
            w.read(0, x(((k + 3) % 8) as u32), k).unwrap();
        }
        let collected = w.finish();
        // Dependency entries never exceed cap + registers touched since
        // the last eviction sweep — far below the 4000 ops issued.
        let entries = tier.with_session(0, |s| s.deps.len());
        assert!(entries <= 8, "deps grew to {entries}");
        assert!(tier.stats().dep_evictions > 0);
        cluster.settle();
        let trace = cluster.trace_snapshot();
        assert!(prcc_checker::check_sessions(&trace, &collected.events).is_empty());
    }

    #[test]
    fn concurrent_workers_preserve_session_guarantees() {
        let cluster = ThreadedCluster::new(topology::clique_full(4, 4), DelayModel::Fixed(1), 17);
        let tier = ServingTier::new(&cluster, ServingConfig::default());
        let collected = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4u64)
                .map(|wid| {
                    let tier = &tier;
                    s.spawn(move || {
                        let mut w = tier.worker();
                        for k in 0..200u64 {
                            // Worker wid owns sessions {wid, wid+4, ...}.
                            let sid = wid + 4 * (k % 3);
                            if k % 4 == 0 {
                                w.write(sid, x((k % 4) as u32), Value::from(wid * 1000 + k))
                                    .unwrap();
                            } else {
                                w.read(sid, x((k % 4) as u32), k).unwrap();
                            }
                        }
                        w.finish()
                    })
                })
                .collect();
            let mut all = Collected::default();
            for h in handles {
                all.absorb(h.join().expect("worker"));
            }
            all
        });
        assert_eq!(collected.ops, 800);
        cluster.settle();
        assert!(cluster.check().is_consistent());
        let trace = cluster.trace_snapshot();
        assert!(
            prcc_checker::check_sessions(&trace, &collected.events).is_empty(),
            "session guarantees violated"
        );
    }

    #[test]
    fn ops_fail_over_when_preferred_replica_crashes() {
        // Session layer armed: updates shipped into the crash window are
        // retransmitted after the restart, so the cluster still settles.
        let cluster = ThreadedCluster::with_config(
            topology::clique_full(3, 2),
            DelayModel::Fixed(1),
            9,
            crate::runtime::ClusterConfig {
                durability: Some(8),
                session: Some(prcc_net::SessionConfig {
                    rto_base: 10,
                    rto_max: 80,
                    jitter: 3,
                    ack_delay: 0,
                }),
                ..crate::runtime::ClusterConfig::default()
            },
        );
        let tier = ServingTier::new(&cluster, ServingConfig::default());
        let mut w = tier.worker();
        let (preferred, _) = route(cluster.graph(), 0, 2, x(0));
        cluster.crash(preferred);
        for k in 0..10u64 {
            w.write(0, x(0), Value::from(k)).unwrap();
            let (v, server) = w.read(0, x(0), 0).unwrap();
            assert_eq!(v, Some(Value::from(k)));
            assert_ne!(server, preferred, "read served by a crashed replica");
        }
        let collected = w.finish();
        assert_eq!(collected.ops, 20);
        assert_eq!(collected.failed, 0);
        assert!(!collected.failover_lat.is_empty());
        let stats = tier.stats();
        assert!(stats.failovers > 0, "no failover counted: {stats:?}");
        assert_eq!(stats.writes_abandoned, 0);
        cluster.restart(preferred);
        cluster.settle();
        let trace = cluster.trace_snapshot();
        assert!(prcc_checker::check_sessions(&trace, &collected.events).is_empty());
    }

    #[test]
    fn overload_sheds_writes_at_the_watermark() {
        let cluster = ThreadedCluster::new(topology::clique_full(3, 2), DelayModel::Fixed(1), 4);
        let cfg = ServingConfig {
            max_in_flight: 2,
            // Keep writes coalescing (never shipped) so tokens pile up.
            write_batch: 1024,
            ..ServingConfig::default()
        };
        let tier = ServingTier::new(&cluster, cfg);
        let mut w = tier.worker();
        // Distinct sessions: draining one's in-flight write must not
        // release another's admission slot.
        w.write(0, x(0), Value::from(0u64)).unwrap();
        w.write(1, x(0), Value::from(1u64)).unwrap();
        let err = w.write(2, x(0), Value::from(2u64)).unwrap_err();
        assert_eq!(err, ServingError::Overloaded { in_flight: 2 });
        assert_eq!(tier.stats().ops_shed, 1);
        let collected = w.finish();
        assert_eq!(collected.ops, 2, "shed write must not be acked");
    }

    #[test]
    fn ops_degrade_to_typed_errors_when_every_holder_is_down() {
        // ring(4): register 1 is held by replicas {1, 2} only.
        let cluster = ThreadedCluster::with_config(
            topology::ring(4),
            DelayModel::Fixed(1),
            6,
            crate::runtime::ClusterConfig {
                durability: Some(8),
                ..crate::runtime::ClusterConfig::default()
            },
        );
        let cfg = ServingConfig {
            op_timeout: Duration::from_millis(50),
            ..ServingConfig::default()
        };
        let tier = ServingTier::new(&cluster, cfg);
        let mut w = tier.worker();
        cluster.crash(ReplicaId::new(1));
        cluster.crash(ReplicaId::new(2));
        // Writes reject immediately: no live holder to route to.
        assert_eq!(
            w.write(0, x(1), Value::from(7u64)).unwrap_err(),
            ServingError::ReplicaCrashed {
                replica: ReplicaId::new(1)
            }
        );
        // Reads block (a restart could still serve them), then degrade.
        assert_eq!(
            w.read(0, x(1), 0).unwrap_err(),
            ServingError::ReplicaCrashed {
                replica: ReplicaId::new(1)
            }
        );
        assert!(tier.stats().op_timeouts >= 1);
        let collected = w.finish();
        assert_eq!(collected.ops, 0);
        cluster.restart(ReplicaId::new(1));
        cluster.restart(ReplicaId::new(2));
        cluster.settle();
    }
}
