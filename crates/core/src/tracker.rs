//! Causality trackers: the pluggable timestamp machinery of the replica
//! prototype (Section 2.1).
//!
//! The prototype leaves three things unspecified — the timestamp
//! structure, how `advance`/`merge` update it, and the delivery predicate
//! `J`. A [`CausalityTracker`] bundles exactly those three, so one replica
//! implementation hosts:
//!
//! * [`EdgeTracker`] — the paper's edge-indexed algorithm (Section 3.3),
//!   including truncated variants (Appendix D) via bounded loop configs;
//! * [`VcTracker`] — the vector-clock baseline (full replication /
//!   dummy-register emulation, Appendix D).

use crate::message::{Metadata, UpdateMsg};
use prcc_sharegraph::{RegisterId, ReplicaId};
use prcc_timestamp::{JVerdict, TsRegistry, VectorClock};
use std::fmt;
use std::sync::Arc;

/// Outcome of [`CausalityTracker::ready_check`]: the boolean predicate
/// `J`, enriched — when the tracker supports it — with the cause of a
/// block, so the replica's pending index can park the message under a
/// counter slot instead of re-scanning it after every apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadyCheck {
    /// The update may be applied now.
    Ready,
    /// Blocked until local counter `slot` (a tracker-defined index)
    /// reaches `needs`; the tracker guarantees the predicate cannot turn
    /// true before that counter advances to at least `needs`.
    BlockedOn {
        /// Tracker-defined counter index that must advance.
        slot: usize,
        /// Value the counter must reach before re-evaluating.
        needs: u64,
    },
    /// Blocked for a reason the tracker cannot localize to one counter —
    /// the caller must re-evaluate after every apply (scan semantics).
    BlockedUnknown,
    /// Never deliverable (duplicate / foreign metadata); parking it
    /// forever is safe and matches the scan path, where `ready` stays
    /// false for such messages.
    Dead,
}

/// The timestamp side of a replica: `advance`, `merge`, and predicate `J`.
pub trait CausalityTracker: Send + fmt::Debug {
    /// Step 2(ii): the local replica wrote register `x`; advance the
    /// timestamp and return the metadata to attach to the update message.
    fn on_local_write(&mut self, x: RegisterId) -> Metadata;

    /// Predicate `J`: may the update carried by `msg` be applied now?
    fn ready(&self, msg: &UpdateMsg) -> bool;

    /// Predicate `J` with blocking diagnosis, for the wakeup pending
    /// index. The default delegates to [`CausalityTracker::ready`] and
    /// reports [`ReadyCheck::BlockedUnknown`] on failure, which keeps
    /// every existing tracker correct (blocked-unknown messages are
    /// re-scanned after each apply, exactly the old behavior).
    fn ready_check(&self, msg: &UpdateMsg) -> ReadyCheck {
        if self.ready(msg) {
            ReadyCheck::Ready
        } else {
            ReadyCheck::BlockedUnknown
        }
    }

    /// Batched predicate `J` over a run of consecutive updates from one
    /// issuer on a single pair stream, in send order: `Some(true)` iff the
    /// whole run is deliverable now as an in-order unit *and* merging only
    /// the last update's metadata reproduces the state of merging each in
    /// turn — the once-per-batch evaluation of
    /// [`TsRegistry::batch_ready`](prcc_timestamp::TsRegistry::batch_ready).
    /// `Some(false)` or `None` (the default: tracker has no batch
    /// evaluation) sends the caller down the per-message path.
    fn batch_ready(&self, msgs: &[UpdateMsg]) -> Option<bool> {
        let _ = msgs;
        None
    }

    /// Step 4(ii): merge the applied update's metadata into the local
    /// timestamp.
    fn on_apply(&mut self, msg: &UpdateMsg);

    /// [`CausalityTracker::on_apply`] that additionally appends
    /// `(slot, new_value)` for every local counter the merge advanced —
    /// the wakeup signal. The default performs the apply and reports
    /// nothing, which pairs with the `BlockedUnknown` default above.
    fn on_apply_report(&mut self, msg: &UpdateMsg, advanced: &mut Vec<(usize, u64)>) {
        let _ = &*advanced;
        self.on_apply(msg);
    }

    /// Current size of the local timestamp in bytes.
    fn timestamp_bytes(&self) -> usize;

    /// Number of counters in the local timestamp.
    fn num_counters(&self) -> usize;

    /// Clones the tracker behind its trait object — required by the
    /// state-space explorer, which snapshots whole replicas.
    fn clone_box(&self) -> Box<dyn CausalityTracker>;
}

impl Clone for Box<dyn CausalityTracker> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The paper's algorithm: edge-indexed vector timestamps.
#[derive(Clone)]
pub struct EdgeTracker {
    registry: Arc<TsRegistry>,
    ts: prcc_timestamp::EdgeTimestamp,
}

impl EdgeTracker {
    /// Creates the tracker for replica `i` over a shared registry.
    pub fn new(registry: Arc<TsRegistry>, i: ReplicaId) -> Self {
        let ts = registry.new_timestamp(i);
        EdgeTracker { registry, ts }
    }

    /// The current timestamp (for inspection / tests).
    pub fn timestamp(&self) -> &prcc_timestamp::EdgeTimestamp {
        &self.ts
    }
}

impl fmt::Debug for EdgeTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EdgeTracker").field("ts", &self.ts).finish()
    }
}

impl CausalityTracker for EdgeTracker {
    fn on_local_write(&mut self, x: RegisterId) -> Metadata {
        self.registry.advance(&mut self.ts, x);
        Metadata::Edge(self.ts.clone())
    }

    fn ready(&self, msg: &UpdateMsg) -> bool {
        match &*msg.meta {
            Metadata::Edge(t) => self.registry.ready(&self.ts, msg.issuer, t),
            Metadata::Projected { values, .. } => {
                self.registry.ready_projected(&self.ts, msg.issuer, values)
            }
            _ => false,
        }
    }

    fn ready_check(&self, msg: &UpdateMsg) -> ReadyCheck {
        let verdict = match &*msg.meta {
            Metadata::Edge(t) => self.registry.ready_check(&self.ts, msg.issuer, t),
            Metadata::Projected { values, .. } => self
                .registry
                .ready_check_projected(&self.ts, msg.issuer, values),
            // Foreign metadata can never become deliverable here.
            _ => return ReadyCheck::Dead,
        };
        match verdict {
            JVerdict::Ready => ReadyCheck::Ready,
            JVerdict::Blocked { slot, needs } => ReadyCheck::BlockedOn { slot, needs },
            JVerdict::Dead => ReadyCheck::Dead,
        }
    }

    fn batch_ready(&self, msgs: &[UpdateMsg]) -> Option<bool> {
        let (first, rest) = msgs.split_first()?;
        if rest.iter().any(|m| m.issuer != first.issuer) {
            return Some(false);
        }
        match &*first.meta {
            Metadata::Edge(_) => {
                let mut stamps = Vec::with_capacity(msgs.len());
                for m in msgs {
                    match &*m.meta {
                        Metadata::Edge(t) => stamps.push(t),
                        _ => return Some(false),
                    }
                }
                Some(self.registry.batch_ready(&self.ts, first.issuer, &stamps))
            }
            Metadata::Projected { .. } => {
                let mut slices = Vec::with_capacity(msgs.len());
                for m in msgs {
                    match &*m.meta {
                        Metadata::Projected { values, .. } => slices.push(values.as_slice()),
                        _ => return Some(false),
                    }
                }
                Some(
                    self.registry
                        .batch_ready_projected(&self.ts, first.issuer, &slices),
                )
            }
            _ => Some(false),
        }
    }

    fn on_apply(&mut self, msg: &UpdateMsg) {
        match &*msg.meta {
            Metadata::Edge(t) => self.registry.merge(&mut self.ts, msg.issuer, t),
            Metadata::Projected { values, .. } => {
                self.registry
                    .merge_projected(&mut self.ts, msg.issuer, values)
            }
            _ => {}
        }
    }

    fn on_apply_report(&mut self, msg: &UpdateMsg, advanced: &mut Vec<(usize, u64)>) {
        match &*msg.meta {
            Metadata::Edge(t) => self
                .registry
                .merge_report(&mut self.ts, msg.issuer, t, advanced),
            Metadata::Projected { values, .. } => {
                self.registry
                    .merge_projected_report(&mut self.ts, msg.issuer, values, advanced)
            }
            _ => {}
        }
    }

    fn timestamp_bytes(&self) -> usize {
        self.ts.wire_size_bytes()
    }

    fn num_counters(&self) -> usize {
        self.ts.num_counters()
    }

    fn clone_box(&self) -> Box<dyn CausalityTracker> {
        Box::new(self.clone())
    }
}

/// The vector-clock baseline. Correct only when every replica sees the
/// metadata of every update (full replication, or partial replication with
/// dummy registers everywhere — Appendix D), which is exactly how the
/// [`System`](crate::System) wires it.
#[derive(Clone)]
pub struct VcTracker {
    me: ReplicaId,
    vc: VectorClock,
}

impl VcTracker {
    /// Creates the tracker for replica `me` in a system of `replicas`.
    pub fn new(me: ReplicaId, replicas: usize) -> Self {
        VcTracker {
            me,
            vc: VectorClock::new(replicas),
        }
    }

    /// The current clock (for inspection / tests).
    pub fn clock(&self) -> &VectorClock {
        &self.vc
    }
}

impl fmt::Debug for VcTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VcTracker")
            .field("me", &self.me)
            .field("vc", &self.vc)
            .finish()
    }
}

impl CausalityTracker for VcTracker {
    fn on_local_write(&mut self, _x: RegisterId) -> Metadata {
        self.vc.increment(self.me);
        Metadata::Vector(self.vc.clone())
    }

    fn ready(&self, msg: &UpdateMsg) -> bool {
        match &*msg.meta {
            Metadata::Vector(v) => self.vc.deliverable(msg.issuer, v),
            _ => false,
        }
    }

    fn on_apply(&mut self, msg: &UpdateMsg) {
        if let Metadata::Vector(v) = &*msg.meta {
            self.vc.merge(v);
        }
    }

    fn timestamp_bytes(&self) -> usize {
        self.vc.wire_size_bytes()
    }

    fn num_counters(&self) -> usize {
        self.vc.len()
    }

    fn clone_box(&self) -> Box<dyn CausalityTracker> {
        Box::new(self.clone())
    }
}

/// Explicit dependency tracking: every update carries its **entire
/// transitive causal past** as a list of `(issuer, seq, register)`
/// entries — the Full-Track-style baseline from the paper's related work
/// (Shen et al.). Correct under partial replication because a recipient
/// gates only on dependencies whose register it stores (the full closure
/// is present, so transitivity never leaks); hopeless in metadata cost,
/// which is exactly the point the paper's fixed-size timestamps make.
pub struct FullDepsTracker {
    me: ReplicaId,
    stores: prcc_sharegraph::RegSet,
    next_seq: u64,
    /// Everything in this replica's causal past (applied or issued).
    past: std::collections::BTreeSet<crate::message::DepEntry>,
    /// Fast membership: (issuer, seq) pairs applied/issued here.
    applied: std::collections::HashSet<(ReplicaId, u64)>,
}

impl FullDepsTracker {
    /// Creates the tracker for replica `me`, which stores `stores`.
    pub fn new(me: ReplicaId, stores: prcc_sharegraph::RegSet) -> Self {
        FullDepsTracker {
            me,
            stores,
            next_seq: 0,
            past: std::collections::BTreeSet::new(),
            applied: std::collections::HashSet::new(),
        }
    }
}

impl fmt::Debug for FullDepsTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FullDepsTracker")
            .field("me", &self.me)
            .field("past", &self.past.len())
            .finish()
    }
}

impl Clone for FullDepsTracker {
    fn clone(&self) -> Self {
        FullDepsTracker {
            me: self.me,
            stores: self.stores.clone(),
            next_seq: self.next_seq,
            past: self.past.clone(),
            applied: self.applied.clone(),
        }
    }
}

impl CausalityTracker for FullDepsTracker {
    fn on_local_write(&mut self, x: RegisterId) -> Metadata {
        // The attached metadata is the past *before* this write (its
        // dependencies); then the write joins the past.
        let deps: Vec<crate::message::DepEntry> = self.past.iter().copied().collect();
        let entry = crate::message::DepEntry {
            issuer: self.me,
            seq: self.next_seq,
            register: x,
        };
        self.next_seq += 1;
        self.past.insert(entry);
        self.applied.insert((entry.issuer, entry.seq));
        Metadata::Deps(deps)
    }

    fn ready(&self, msg: &UpdateMsg) -> bool {
        match &*msg.meta {
            Metadata::Deps(deps) => deps.iter().all(|d| {
                !self.stores.contains(d.register) || self.applied.contains(&(d.issuer, d.seq))
            }),
            _ => false,
        }
    }

    fn on_apply(&mut self, msg: &UpdateMsg) {
        if let Metadata::Deps(deps) = &*msg.meta {
            for &d in deps {
                self.past.insert(d);
            }
            self.note_applied(crate::message::DepEntry {
                issuer: msg.issuer,
                seq: msg.seq,
                register: msg.register,
            });
        }
    }

    fn timestamp_bytes(&self) -> usize {
        self.past.len() * 16
    }

    fn num_counters(&self) -> usize {
        self.past.len()
    }

    fn clone_box(&self) -> Box<dyn CausalityTracker> {
        Box::new(self.clone())
    }
}

impl FullDepsTracker {
    /// Records the identity of an applied update (called by the replica
    /// layer, which knows the update's id and register — `on_apply` only
    /// sees the metadata).
    pub fn note_applied(&mut self, entry: crate::message::DepEntry) {
        self.past.insert(entry);
        self.applied.insert((entry.issuer, entry.seq));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::{topology, LoopConfig, TimestampGraphs};

    /// Wraps metadata in a message envelope for predicate calls.
    fn msg(issuer: u32, seq: u64, reg: u32, meta: Metadata) -> UpdateMsg {
        UpdateMsg {
            issuer: ReplicaId::new(issuer),
            seq,
            register: RegisterId::new(reg),
            value: Some(crate::value::Value::from(0u64)),
            meta: Arc::new(meta),
            transit: None,
        }
    }

    fn edge_tracker_pair() -> (EdgeTracker, EdgeTracker) {
        let g = topology::path(2);
        let reg = Arc::new(TsRegistry::new(
            &g,
            TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE),
        ));
        (
            EdgeTracker::new(reg.clone(), ReplicaId::new(0)),
            EdgeTracker::new(reg, ReplicaId::new(1)),
        )
    }

    #[test]
    fn edge_tracker_round_trip() {
        let (mut a, mut b) = edge_tracker_pair();
        let m1 = msg(0, 0, 0, a.on_local_write(RegisterId::new(0)));
        let m2 = msg(0, 1, 0, a.on_local_write(RegisterId::new(0)));
        assert!(!b.ready(&m2));
        assert!(b.ready(&m1));
        b.on_apply(&m1);
        assert!(b.ready(&m2));
        assert_eq!(a.num_counters(), 2);
        assert_eq!(a.timestamp_bytes(), 16);
    }

    #[test]
    fn edge_tracker_rejects_foreign_metadata() {
        let (a, _) = edge_tracker_pair();
        let vc_meta = msg(1, 0, 0, Metadata::Vector(VectorClock::new(2)));
        assert!(!a.ready(&vc_meta));
    }

    #[test]
    fn vc_tracker_round_trip() {
        let mut a = VcTracker::new(ReplicaId::new(0), 3);
        let mut b = VcTracker::new(ReplicaId::new(1), 3);
        let m1 = msg(0, 0, 0, a.on_local_write(RegisterId::new(0)));
        let m2 = msg(0, 1, 5, a.on_local_write(RegisterId::new(5)));
        assert!(!b.ready(&m2));
        assert!(b.ready(&m1));
        b.on_apply(&m1);
        assert!(b.ready(&m2));
        assert_eq!(b.num_counters(), 3);
    }

    #[test]
    fn vc_tracker_rejects_foreign_metadata() {
        let edge_meta = {
            let (mut src, _) = edge_tracker_pair();
            src.on_local_write(RegisterId::new(0))
        };
        let vc = VcTracker::new(ReplicaId::new(1), 2);
        assert!(!vc.ready(&msg(0, 0, 0, edge_meta)));
    }

    #[test]
    fn full_deps_tracker_round_trip() {
        let g = topology::path(2);
        let mut a = FullDepsTracker::new(
            ReplicaId::new(0),
            g.placement().registers_of(ReplicaId::new(0)).clone(),
        );
        let mut b = FullDepsTracker::new(
            ReplicaId::new(1),
            g.placement().registers_of(ReplicaId::new(1)).clone(),
        );
        let m1 = msg(0, 0, 0, a.on_local_write(RegisterId::new(0)));
        let m2 = msg(0, 1, 0, a.on_local_write(RegisterId::new(0)));
        // m2's deps include m1 (register 0, stored at b): blocked.
        assert!(!b.ready(&m2));
        assert!(b.ready(&m1)); // no deps
        b.on_apply(&m1);
        assert!(b.ready(&m2));
        b.on_apply(&m2);
        // Metadata grows with history — the Full-Track cost.
        assert_eq!(m1.meta.num_counters(), 0);
        assert_eq!(m2.meta.num_counters(), 1);
        assert_eq!(b.num_counters(), 2);
        assert!(format!("{b:?}").contains("FullDepsTracker"));
    }

    #[test]
    fn full_deps_ignores_unstored_registers() {
        // Receiver does not store register 9: a dep on it never gates.
        let mut issuer = FullDepsTracker::new(
            ReplicaId::new(0),
            prcc_sharegraph::RegSet::from_indices([0, 9]),
        );
        let receiver = FullDepsTracker::new(
            ReplicaId::new(1),
            prcc_sharegraph::RegSet::from_indices([0]),
        );
        issuer.on_local_write(RegisterId::new(9)); // dep on reg 9
        let m = msg(0, 1, 0, issuer.on_local_write(RegisterId::new(0)));
        assert!(receiver.ready(&m));
    }

    #[test]
    fn edge_tracker_ready_check_localizes_blocks() {
        let (mut a, mut b) = edge_tracker_pair();
        let m1 = msg(0, 0, 0, a.on_local_write(RegisterId::new(0)));
        let m2 = msg(0, 1, 0, a.on_local_write(RegisterId::new(0)));
        assert_eq!(b.ready_check(&m1), ReadyCheck::Ready);
        let ReadyCheck::BlockedOn { slot, needs } = b.ready_check(&m2) else {
            panic!("expected BlockedOn, got {:?}", b.ready_check(&m2));
        };
        assert_eq!(needs, 1);
        // Applying m1 must advance exactly the blocking slot to `needs`.
        let mut advanced = Vec::new();
        b.on_apply_report(&m1, &mut advanced);
        assert!(advanced.contains(&(slot, needs)), "advanced: {advanced:?}");
        assert_eq!(b.ready_check(&m2), ReadyCheck::Ready);
        // Duplicate delivery of m1 is Dead, as is foreign metadata.
        assert_eq!(b.ready_check(&m1), ReadyCheck::Dead);
        let foreign = msg(0, 7, 0, Metadata::Vector(VectorClock::new(2)));
        assert_eq!(b.ready_check(&foreign), ReadyCheck::Dead);
    }

    #[test]
    fn default_ready_check_reports_unknown() {
        // VcTracker uses the trait defaults: blocked ⇒ BlockedUnknown,
        // on_apply_report ⇒ no slot info.
        let mut a = VcTracker::new(ReplicaId::new(0), 2);
        let b = VcTracker::new(ReplicaId::new(1), 2);
        let m1 = msg(0, 0, 0, a.on_local_write(RegisterId::new(0)));
        let m2 = msg(0, 1, 0, a.on_local_write(RegisterId::new(0)));
        assert_eq!(b.ready_check(&m1), ReadyCheck::Ready);
        assert_eq!(b.ready_check(&m2), ReadyCheck::BlockedUnknown);
        let mut advanced = Vec::new();
        let mut b2 = b.clone();
        b2.on_apply_report(&m1, &mut advanced);
        assert!(advanced.is_empty());
        assert_eq!(b2.ready_check(&m2), ReadyCheck::Ready);
    }

    #[test]
    fn trackers_are_debuggable() {
        let (a, _) = edge_tracker_pair();
        assert!(format!("{a:?}").contains("EdgeTracker"));
        let v = VcTracker::new(ReplicaId::new(0), 2);
        assert!(format!("{v:?}").contains("VcTracker"));
    }
}
