//! The client-server architecture (Section 6, Appendix E).
//!
//! Servers are replicas; clients hold their own timestamps `μ_c` and may
//! read/write at any replica of their set `R_c`, propagating causal
//! dependencies *between* replicas that share no registers. Requests are
//! gated by predicates `J₁`/`J₂` (the server buffers a request until its
//! own timestamp dominates the client's incoming-edge view); server-to-
//! server updates use the peer predicate `J₃` over the **augmented**
//! timestamp graphs.

use crate::message::{Metadata, UpdateMsg};
use crate::value::Value;
use prcc_checker::{check, CheckReport, Trace, UpdateId};
use prcc_net::{DelayModel, SimNetwork};
use prcc_sharegraph::{AugmentedShareGraph, ClientId, RegisterId, ReplicaId};
use prcc_timestamp::{ClientTimestamp, ClientTsRegistry, EdgeTimestamp};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a client request, in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

/// A client operation awaiting service.
#[derive(Debug, Clone)]
enum Request {
    Read {
        id: RequestId,
        client: ClientId,
        replica: ReplicaId,
        register: RegisterId,
        mu: ClientTimestamp,
    },
    Write {
        id: RequestId,
        client: ClientId,
        replica: ReplicaId,
        register: RegisterId,
        value: Value,
        mu: ClientTimestamp,
    },
}

impl Request {
    fn replica(&self) -> ReplicaId {
        match self {
            Request::Read { replica, .. } | Request::Write { replica, .. } => *replica,
        }
    }
    fn mu(&self) -> &ClientTimestamp {
        match self {
            Request::Read { mu, .. } | Request::Write { mu, .. } => mu,
        }
    }
}

struct Server {
    tau: EdgeTimestamp,
    store: HashMap<RegisterId, Value>,
    /// Which update produced the current value of each register.
    store_src: HashMap<RegisterId, UpdateId>,
    pending_updates: Vec<UpdateMsg>,
    next_seq: u64,
}

pub use prcc_checker::SessionEvent;

/// A complete simulated client-server deployment.
///
/// # Examples
///
/// ```
/// use prcc_core::client_server::ClientServerSystem;
/// use prcc_core::Value;
/// use prcc_net::DelayModel;
/// use prcc_sharegraph::{topology, AugmentedShareGraph, ClientAssignment, ClientId, ReplicaId, RegisterId};
///
/// let g = topology::path(3);
/// let mut clients = ClientAssignment::new(3);
/// clients.assign(ClientId::new(0), [ReplicaId::new(0), ReplicaId::new(2)]);
/// let aug = AugmentedShareGraph::new(g, clients);
/// let mut sys = ClientServerSystem::new(aug, DelayModel::Fixed(1), 0);
///
/// let w = sys.write(ClientId::new(0), ReplicaId::new(0), RegisterId::new(0), Value::from(1u64));
/// sys.run_to_quiescence();
/// assert!(sys.is_write_done(w));
/// ```
pub struct ClientServerSystem {
    aug: AugmentedShareGraph,
    reg: ClientTsRegistry,
    servers: Vec<Server>,
    clients: HashMap<ClientId, ClientTimestamp>,
    requests: Vec<Request>,
    net: SimNetwork<UpdateMsg>,
    trace: Trace,
    next_request: u64,
    read_results: HashMap<RequestId, Option<Value>>,
    done_writes: HashMap<RequestId, UpdateId>,
    sessions: Vec<SessionEvent>,
}

impl fmt::Debug for ClientServerSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClientServerSystem")
            .field("servers", &self.servers.len())
            .field("clients", &self.clients.len())
            .field("queued_requests", &self.requests.len())
            .finish()
    }
}

impl ClientServerSystem {
    /// Creates the system over an augmented share graph.
    pub fn new(aug: AugmentedShareGraph, delay: DelayModel, seed: u64) -> Self {
        let reg = ClientTsRegistry::new(&aug);
        let servers = aug
            .base()
            .replicas()
            .map(|i| Server {
                tau: reg.peer().new_timestamp(i),
                store: HashMap::new(),
                store_src: HashMap::new(),
                pending_updates: Vec::new(),
                next_seq: 0,
            })
            .collect();
        let clients = aug
            .clients()
            .clients()
            .iter()
            .map(|(c, _)| (*c, reg.new_client_timestamp(*c)))
            .collect();
        ClientServerSystem {
            aug,
            reg,
            servers,
            clients,
            requests: Vec::new(),
            net: SimNetwork::new(delay, seed),
            trace: Trace::new(),
            next_request: 0,
            read_results: HashMap::new(),
            done_writes: HashMap::new(),
            sessions: Vec::new(),
        }
    }

    fn fresh_request(&mut self) -> RequestId {
        let id = RequestId(self.next_request);
        self.next_request += 1;
        id
    }

    /// Submits a write of `v` to register `x` at replica `i` on behalf of
    /// client `c`. Served once predicate `J₂` admits it.
    ///
    /// # Panics
    ///
    /// Panics if `i ∉ R_c` or `x ∉ X_i`.
    pub fn write(&mut self, c: ClientId, i: ReplicaId, x: RegisterId, v: Value) -> RequestId {
        self.validate(c, i, x);
        let id = self.fresh_request();
        let mu = self.clients[&c].clone();
        self.requests.push(Request::Write {
            id,
            client: c,
            replica: i,
            register: x,
            value: v,
            mu,
        });
        self.pump();
        id
    }

    /// Submits a read of register `x` at replica `i` for client `c`.
    /// Served once predicate `J₁` admits it.
    ///
    /// # Panics
    ///
    /// Panics if `i ∉ R_c` or `x ∉ X_i`.
    pub fn read(&mut self, c: ClientId, i: ReplicaId, x: RegisterId) -> RequestId {
        self.validate(c, i, x);
        let id = self.fresh_request();
        let mu = self.clients[&c].clone();
        self.requests.push(Request::Read {
            id,
            client: c,
            replica: i,
            register: x,
            mu,
        });
        self.pump();
        id
    }

    fn validate(&self, c: ClientId, i: ReplicaId, x: RegisterId) {
        let rs = self
            .aug
            .clients()
            .replicas_of(c)
            .unwrap_or_else(|| panic!("unknown client {c}"));
        assert!(rs.contains(&i), "replica {i} not in R_{c}");
        assert!(
            self.aug.base().placement().stores(i, x),
            "register {x} not stored at {i}"
        );
    }

    /// Serves every currently admissible request (predicates `J₁`/`J₂`).
    fn pump(&mut self) {
        loop {
            let Some(pos) = self.requests.iter().position(|rq| {
                let srv = &self.servers[rq.replica().index()];
                self.reg.request_ready(&srv.tau, rq.mu())
            }) else {
                return;
            };
            let rq = self.requests.remove(pos);
            match rq {
                Request::Read {
                    id,
                    client,
                    replica,
                    register,
                    ..
                } => {
                    let tau = self.servers[replica.index()].tau.clone();
                    let value = self.servers[replica.index()].store.get(&register).cloned();
                    let observed = self.servers[replica.index()]
                        .store_src
                        .get(&register)
                        .copied();
                    self.read_results.insert(id, value);
                    self.sessions.push(SessionEvent::Read {
                        client,
                        register,
                        observed,
                    });
                    let mu = self.clients.get_mut(&client).expect("known client");
                    self.reg.merge_into_client(mu, &tau);
                }
                Request::Write {
                    id,
                    client,
                    replica,
                    register,
                    value,
                    mu,
                } => {
                    // advance(i, τ, c, μ, x, v) then distribute.
                    let g = self.aug.base().clone();
                    {
                        let srv = &mut self.servers[replica.index()];
                        self.reg.advance_for_client(&mut srv.tau, &mu, register, &g);
                        srv.store.insert(register, value.clone());
                    }
                    let (seq, tau) = {
                        let srv = &mut self.servers[replica.index()];
                        let s = srv.next_seq;
                        srv.next_seq += 1;
                        (s, srv.tau.clone())
                    };
                    let uid = UpdateId {
                        issuer: replica,
                        seq,
                    };
                    self.servers[replica.index()]
                        .store_src
                        .insert(register, uid);
                    self.sessions.push(SessionEvent::Write {
                        client,
                        update: uid,
                        register,
                    });
                    self.trace.record_issue_with_id(uid, register);
                    let msg = UpdateMsg {
                        issuer: replica,
                        seq,
                        register,
                        value: Some(value),
                        meta: std::sync::Arc::new(Metadata::Edge(tau.clone())),
                        transit: None,
                    };
                    for &h in g.placement().holders(register) {
                        if h != replica {
                            self.net.send(replica, h, msg.clone());
                        }
                    }
                    // Reply to client: merge τ_i into μ_c.
                    let mu_c = self.clients.get_mut(&client).expect("known client");
                    self.reg.merge_into_client(mu_c, &tau);
                    self.done_writes.insert(id, uid);
                }
            }
        }
    }

    /// Delivers one server-to-server update (predicate `J₃` + `merge₃`),
    /// then serves any unblocked requests. Returns `false` at quiescence.
    pub fn step(&mut self) -> bool {
        let Some((_, env)) = self.net.next_delivery() else {
            return false;
        };
        let dst = env.dst;
        self.servers[dst.index()].pending_updates.push(env.msg);
        // Drain pending per J₃.
        loop {
            let srv = &self.servers[dst.index()];
            let Some(pos) = srv.pending_updates.iter().position(|m| match &*m.meta {
                Metadata::Edge(t) => self.reg.peer().ready(&srv.tau, m.issuer, t),
                _ => false,
            }) else {
                break;
            };
            let m = self.servers[dst.index()].pending_updates.remove(pos);
            if let Metadata::Edge(t) = &*m.meta {
                let srv = &mut self.servers[dst.index()];
                self.reg.peer().merge(&mut srv.tau, m.issuer, t);
                if let Some(v) = &m.value {
                    srv.store.insert(m.register, v.clone());
                    srv.store_src.insert(
                        m.register,
                        UpdateId {
                            issuer: m.issuer,
                            seq: m.seq,
                        },
                    );
                }
            }
            self.trace.record_apply(
                UpdateId {
                    issuer: m.issuer,
                    seq: m.seq,
                },
                dst,
            );
        }
        self.pump();
        true
    }

    /// Runs until no update is in flight and no request can be served.
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
        self.pump();
    }

    /// The result of a completed read (`None` value = register unwritten).
    /// Returns `None` if the read hasn't been served yet.
    pub fn read_result(&self, id: RequestId) -> Option<&Option<Value>> {
        self.read_results.get(&id)
    }

    /// True if the write request has been served.
    pub fn is_write_done(&self, id: RequestId) -> bool {
        self.done_writes.contains_key(&id)
    }

    /// Requests still blocked on their predicate.
    pub fn blocked_requests(&self) -> usize {
        self.requests.len()
    }

    /// Checks replica-centric causal consistency of the server-side trace.
    pub fn check(&self) -> CheckReport {
        check(&self.trace, self.aug.base().placement())
    }

    /// The client's current timestamp (for size accounting).
    pub fn client_timestamp(&self, c: ClientId) -> &ClientTimestamp {
        &self.clients[&c]
    }

    /// The execution trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The served session events, in service order.
    pub fn session_events(&self) -> &[SessionEvent] {
        &self.sessions
    }

    /// Checks the client-visible session guarantees (read-your-writes and
    /// monotonic reads) — delegates to
    /// [`prcc_checker::check_sessions`], the same verdict machinery the
    /// threaded serving tier is checked with. Returns human-readable
    /// descriptions of any violations.
    pub fn check_sessions(&self) -> Vec<String> {
        prcc_checker::check_sessions(&self.trace, &self.sessions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::{topology, ClientAssignment};

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }
    fn c(i: u32) -> ClientId {
        ClientId::new(i)
    }

    /// Path 0-1-2 with one client on {0, 2} and one on {1}.
    fn spanning_setup() -> ClientServerSystem {
        let g = topology::path(3);
        let mut clients = ClientAssignment::new(3);
        clients.assign(c(0), [r(0), r(2)]);
        clients.assign(c(1), [r(1)]);
        let aug = AugmentedShareGraph::new(g, clients);
        ClientServerSystem::new(aug, DelayModel::Fixed(2), 0)
    }

    #[test]
    fn simple_write_then_read() {
        let mut sys = spanning_setup();
        let w = sys.write(c(0), r(0), x(0), Value::from(5u64));
        assert!(sys.is_write_done(w)); // no dependencies: served at once
        sys.run_to_quiescence();
        // Register 0 is shared by replicas 0, 1; client 1 reads at 1.
        let rd = sys.read(c(1), r(1), x(0));
        sys.run_to_quiescence();
        assert_eq!(sys.read_result(rd), Some(&Some(Value::from(5u64))));
        assert!(sys.check().is_consistent());
    }

    #[test]
    fn client_session_dependency_across_replicas() {
        // Client 0 writes at replica 0, then reads its own write's effects
        // at replica 2 through a fresh write — session causality carried by
        // μ even though replicas 0 and 2 share nothing.
        let mut sys = spanning_setup();
        let w0 = sys.write(c(0), r(0), x(0), Value::from(1u64));
        assert!(sys.is_write_done(w0));
        let w2 = sys.write(c(0), r(2), x(1), Value::from(2u64));
        assert!(sys.is_write_done(w2));
        sys.run_to_quiescence();
        let rep = sys.check();
        assert!(rep.is_consistent(), "{:?}", rep.violations);
        assert_eq!(sys.blocked_requests(), 0);
    }

    #[test]
    fn read_blocks_until_dependency_arrives() {
        // Client 0 writes x0 at replica 0 (shared 0-1). Client 0's μ now
        // records the update. A read by client 0 at replica 2 is fine
        // (x1 etc.), but a *read at replica 0* by a client whose μ is
        // ahead of a fresh server blocks. Construct: client 0 writes at
        // r0, then reads at r2 — r2 has no dependency on r0's edges...
        // Use the spanning client to carry a dependency: client 0 writes
        // x0 at r0, then writes x1 at r2. Client 1 cannot exist at r2, so
        // instead verify r2's τ inherited e_01's counter via μ.
        let mut sys = spanning_setup();
        sys.write(c(0), r(0), x(0), Value::from(1u64));
        sys.write(c(0), r(2), x(1), Value::from(2u64));
        sys.run_to_quiescence();
        // Replica 1 stores both registers 0 and 1. It must apply the x1
        // write after the x0 write (safety) — checker verifies.
        let rep = sys.check();
        assert!(rep.is_consistent(), "{:?}", rep.violations);
        assert_eq!(sys.servers[1].store.get(&x(0)), Some(&Value::from(1u64)));
        assert_eq!(sys.servers[1].store.get(&x(1)), Some(&Value::from(2u64)));
    }

    #[test]
    fn monotonic_session_reads() {
        // After reading a value at one replica, the client's μ prevents
        // reading an older state at another replica storing the register.
        // Registers on a path are pairwise-shared, so use replica 1's
        // registers: x0 (0-1) and x1 (1-2).
        let mut sys = spanning_setup();
        sys.write(c(1), r(1), x(0), Value::from(10u64));
        sys.write(c(1), r(1), x(1), Value::from(11u64));
        sys.run_to_quiescence();
        // Client 0 reads x1 at replica 2 — sees 11 (delivered) and μ
        // captures replica 2's view.
        let rd = sys.read(c(0), r(2), x(1));
        sys.run_to_quiescence();
        assert_eq!(sys.read_result(rd), Some(&Some(Value::from(11u64))));
        // A subsequent read at replica 0 of x0: replica 0 has already
        // applied the x0 update (or the request waits until it does).
        let rd2 = sys.read(c(0), r(0), x(0));
        sys.run_to_quiescence();
        assert_eq!(sys.read_result(rd2), Some(&Some(Value::from(10u64))));
        assert!(sys.check().is_consistent());
    }

    #[test]
    fn session_guarantees_hold() {
        let mut sys = spanning_setup();
        sys.write(c(0), r(0), x(0), Value::from(1u64));
        sys.run_to_quiescence();
        // Read back own write through the other holder's replica… client 0
        // can only access r0 and r2; x0 lives at r0, r1. Read at r0.
        let rd = sys.read(c(0), r(0), x(0));
        sys.run_to_quiescence();
        assert_eq!(sys.read_result(rd), Some(&Some(Value::from(1u64))));
        assert!(sys.check_sessions().is_empty());
        assert!(sys.session_events().len() >= 2);
    }

    #[test]
    fn session_checker_catches_fabricated_violation() {
        // Sanity: the checker logic flags an artificial stale observation.
        let mut sys = spanning_setup();
        sys.write(c(1), r(1), x(0), Value::from(1u64)); // u1
        sys.write(c(1), r(1), x(0), Value::from(2u64)); // u2 (u1 ↪ u2)
        sys.run_to_quiescence();
        // Fabricate: pretend client 1 then read the OLD update.
        let u1 = match sys.session_events()[0].clone() {
            SessionEvent::Write { update, .. } => update,
            other => panic!("unexpected {other:?}"),
        };
        sys.sessions.push(SessionEvent::Read {
            client: c(1),
            register: x(0),
            observed: Some(u1),
        });
        let v = sys.check_sessions();
        assert_eq!(v.len(), 2, "{v:?}"); // RYW + monotonic both fire
        assert!(v[0].contains("read-your-writes"));
    }

    #[test]
    fn cross_replica_session_reads_stay_monotonic() {
        let mut sys = spanning_setup();
        for round in 0..4u64 {
            sys.write(c(1), r(1), x(0), Value::from(round));
            sys.write(c(1), r(1), x(1), Value::from(round));
            sys.run_to_quiescence();
            let _ = sys.read(c(0), r(0), x(0));
            let _ = sys.read(c(0), r(2), x(1));
            sys.run_to_quiescence();
        }
        assert!(sys.check_sessions().is_empty());
        assert!(sys.check().is_consistent());
    }

    #[test]
    fn unserved_read_returns_none() {
        let sys = spanning_setup();
        let bogus = RequestId(99);
        assert!(sys.read_result(bogus).is_none());
        assert!(!sys.is_write_done(bogus));
    }

    #[test]
    #[should_panic(expected = "not in R_")]
    fn client_cannot_access_foreign_replica() {
        let mut sys = spanning_setup();
        sys.write(c(1), r(0), x(0), Value::from(0u64));
    }

    #[test]
    #[should_panic(expected = "not stored")]
    fn client_cannot_write_unstored_register() {
        let mut sys = spanning_setup();
        sys.write(c(0), r(0), x(1), Value::from(0u64));
    }
}
