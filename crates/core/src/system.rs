//! A complete simulated deployment: replicas + network + trace + metrics.
//!
//! [`System`] is the reference harness for the peer-to-peer protocol. It
//! owns one [`Replica`] per share-graph vertex, a deterministic
//! [`SimNetwork`], and an execution [`Trace`] fed to the
//! consistency checker. A [`SystemBuilder`] selects:
//!
//! * the causality tracker — the paper's edge-indexed algorithm
//!   (optionally loop-truncated, Appendix D) or the vector-clock baseline
//!   (which broadcasts metadata to every replica, i.e. the dummy-register
//!   emulation of full replication);
//! * dummy registers (Appendix D) — extra metadata-only subscriptions
//!   that reshape the share graph;
//! * dropped timestamp-graph edges — deliberate *oblivious* replicas for
//!   reproducing Theorem 8's impossibility executions (experiment E2).

use crate::codec::{WireCodec, WireMode};
use crate::message::{BatchMsg, UpdateMsg};
use crate::recovery::RecoveryLog;
use crate::replica::{PendingMode, Replica};
use crate::stats::LatencyStats;
use crate::tracker::{CausalityTracker, EdgeTracker, FullDepsTracker, VcTracker};
use crate::value::Value;
use prcc_checker::{check, CheckReport, Trace, UpdateId};
use prcc_net::{
    DelayModel, FaultPlan, FaultSchedule, SessionConfig, SessionEndpoint, SessionFrame,
    SessionStats, SimNetwork,
};
use prcc_sharegraph::{
    EdgeId, LoopConfig, Placement, RegisterId, ReplicaId, ShareGraph, TimestampGraph,
    TimestampGraphs,
};
use prcc_timestamp::TsRegistry;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Which causality tracker the system runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackerKind {
    /// The paper's edge-indexed timestamps, with the given loop-search
    /// bound (use [`LoopConfig::EXHAUSTIVE`] for the exact algorithm).
    EdgeIndexed(LoopConfig),
    /// Classic vector clocks with metadata broadcast to all replicas —
    /// the full-replication emulation baseline (Appendix D).
    VectorClock,
    /// Explicit full-transitive dependency lists (Full-Track-style,
    /// Shen et al.): correct under partial replication with no metadata
    /// broadcast, but metadata grows with history.
    FullDeps,
}

/// How the sender-side pipeline coalesces queued updates into
/// [`BatchMsg`] frames, per ordered `(sender, receiver)` pair.
///
/// A pending batch is flushed to the network when it reaches
/// `batch_count` updates or `batch_bytes` payload bytes, or when
/// `flush_after` ticks have elapsed since its first update was queued —
/// whichever comes first. `batch_count <= 1` degenerates to eager
/// per-update shipping (singleton batches, byte-identical to the
/// unbatched wire: see [`BatchMsg::size_bytes`]), which is also forced
/// whenever the fault schedule scripts crashes — a queued-but-unflushed
/// batch lives in volatile sender memory, and eager flushing keeps the
/// durable outbox complete at every crash instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Max updates per batch (flush trigger). `<= 1` disables coalescing.
    pub batch_count: usize,
    /// Max accumulated payload bytes per batch (flush trigger).
    pub batch_bytes: usize,
    /// Ticks a non-full batch waits for more updates before flushing.
    pub flush_after: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            batch_count: 16,
            batch_bytes: 4096,
            flush_after: 1,
        }
    }
}

impl BatchPolicy {
    /// The differential oracle: every update ships immediately as a
    /// singleton batch — the exact unbatched wire behavior.
    pub fn unbatched() -> Self {
        BatchPolicy {
            batch_count: 1,
            batch_bytes: 0,
            flush_after: 0,
        }
    }

    /// True if this policy ever coalesces more than one update.
    pub fn is_batching(&self) -> bool {
        self.batch_count > 1
    }
}

/// A sender-side pending batch: updates queued for one `(src, dst)`
/// pair, waiting for a flush trigger.
#[derive(Debug)]
struct PendingBatch {
    msgs: Vec<UpdateMsg>,
    bytes: usize,
    due: u64,
}

/// Aggregate counters collected while a [`System`] runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SystemMetrics {
    /// Messages carrying a data payload.
    pub data_messages: usize,
    /// Metadata-only messages (dummy registers / VC broadcast).
    pub meta_messages: usize,
    /// Total metadata bytes across all messages.
    pub metadata_bytes: usize,
    /// Total payload bytes across data messages.
    pub payload_bytes: usize,
    /// Remote updates applied.
    pub applies: usize,
    /// Sum over applied updates of (apply − arrival) in ticks.
    pub total_pending_wait: u64,
    /// Max single (apply − arrival).
    pub max_pending_wait: u64,
    /// Sum over applied updates of (apply − issue) in ticks.
    pub total_visibility: u64,
    /// Number of visibility samples.
    pub visibility_samples: usize,
    /// Max single (apply − issue).
    pub max_visibility: u64,
}

impl SystemMetrics {
    /// Mean arrival→apply wait in ticks (0 if nothing applied).
    pub fn mean_pending_wait(&self) -> f64 {
        if self.applies == 0 {
            0.0
        } else {
            self.total_pending_wait as f64 / self.applies as f64
        }
    }

    /// Mean issue→apply visibility latency in ticks.
    pub fn mean_visibility(&self) -> f64 {
        if self.visibility_samples == 0 {
            0.0
        } else {
            self.total_visibility as f64 / self.visibility_samples as f64
        }
    }
}

/// Builder for [`System`] (see C-BUILDER).
#[derive(Debug)]
pub struct SystemBuilder {
    graph: ShareGraph,
    tracker: TrackerKind,
    pending_mode: PendingMode,
    dummies: Vec<(ReplicaId, RegisterId)>,
    delay: DelayModel,
    seed: u64,
    dropped_edges: Vec<(ReplicaId, EdgeId)>,
    schedule: FaultSchedule,
    session: Option<SessionConfig>,
    snapshot_every: usize,
    wire_mode: WireMode,
    batch: BatchPolicy,
}

impl SystemBuilder {
    /// Starts a builder over the *data* share graph.
    pub fn new(graph: ShareGraph) -> Self {
        SystemBuilder {
            graph,
            tracker: TrackerKind::EdgeIndexed(LoopConfig::EXHAUSTIVE),
            pending_mode: PendingMode::default(),
            dummies: Vec::new(),
            delay: DelayModel::default(),
            seed: 0,
            dropped_edges: Vec::new(),
            schedule: FaultSchedule::none(),
            session: None,
            snapshot_every: 64,
            wire_mode: WireMode::default(),
            batch: BatchPolicy::default(),
        }
    }

    /// Selects the tracker (default: exact edge-indexed).
    pub fn tracker(mut self, kind: TrackerKind) -> Self {
        self.tracker = kind;
        self
    }

    /// Selects how replicas schedule their pending buffers (default:
    /// [`PendingMode::Wakeup`]; `Scan` is the differential-testing
    /// oracle).
    pub fn pending_mode(mut self, mode: PendingMode) -> Self {
        self.pending_mode = mode;
        self
    }

    /// Adds a dummy copy of `register` at `replica` (Appendix D): the
    /// replica subscribes to metadata-only updates of the register,
    /// reshaping the share graph. Ignored under [`TrackerKind::VectorClock`]
    /// (which already broadcasts metadata to everyone).
    pub fn dummy(mut self, replica: ReplicaId, register: RegisterId) -> Self {
        self.dummies.push((replica, register));
        self
    }

    /// Network delay model (default: uniform 1–10 ticks, non-FIFO).
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// RNG seed for the network.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Removes edge `e` from replica `i`'s timestamp graph, making the
    /// replica *oblivious* to updates on `e` (Theorem 8's forbidden
    /// configuration). Edge-indexed tracker only.
    pub fn drop_edge(mut self, i: ReplicaId, e: EdgeId) -> Self {
        self.dropped_edges.push((i, e));
        self
    }

    /// Installs a network fault plan (duplication / drops / dead links),
    /// keeping any scripted schedule already set. The default is the
    /// paper's reliable-channel model.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.schedule.plan = faults;
        self
    }

    /// Installs a full fault schedule: probabilistic plan plus scripted
    /// link outages, partitions, and replica crashes. Crashes require a
    /// durable layer and are recovered from the per-replica
    /// [`RecoveryLog`]; without [`session`](Self::session) the dropped
    /// in-flight messages are *not* re-fed (the negative control).
    pub fn fault_schedule(mut self, schedule: FaultSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Enables the reliable-delivery session layer
    /// ([`SessionEndpoint`]): per-pair sequenced streams, cumulative
    /// ack + selective gaps, timeout retransmission, duplicate
    /// suppression, and post-crash catch-up. Off by default — the
    /// paper's reliable-channel model needs none of it.
    pub fn session(mut self, config: SessionConfig) -> Self {
        self.session = Some(config);
        self
    }

    /// WAL entries between recovery-log snapshot compactions (default
    /// 64; 0 disables snapshotting). Only meaningful when the durable
    /// layer is active (session enabled or crashes scheduled).
    pub fn snapshot_every(mut self, every: usize) -> Self {
        self.snapshot_every = every;
        self
    }

    /// Selects the sender-side batching policy (default:
    /// [`BatchPolicy::default`], coalescing on). Use
    /// [`BatchPolicy::unbatched`] for the per-update differential
    /// oracle. Forced to eager flushing under a crash schedule — see
    /// [`BatchPolicy`].
    pub fn batch_policy(mut self, policy: BatchPolicy) -> Self {
        self.batch = policy;
        self
    }

    /// Selects how outgoing update metadata is encoded per recipient
    /// (default: [`WireMode::Compressed`]; `Raw` is the differential
    /// oracle). Only meaningful for the edge-indexed tracker — the
    /// baselines always ship their metadata raw.
    pub fn wire_mode(mut self, mode: WireMode) -> Self {
        self.wire_mode = mode;
        self
    }

    /// Builds the system.
    pub fn build(self) -> System {
        let data_placement = self.graph.placement().clone();
        // Effective placement = data + dummy copies.
        let effective_graph = if self.dummies.is_empty() {
            self.graph.clone()
        } else {
            let mut sets: Vec<prcc_sharegraph::RegSet> = (0..data_placement.num_replicas())
                .map(|i| {
                    data_placement
                        .registers_of(ReplicaId::new(i as u32))
                        .clone()
                })
                .collect();
            for (r, x) in &self.dummies {
                sets[r.index()].insert(*x);
            }
            ShareGraph::new(Placement::from_sets(sets))
        };
        let n = effective_graph.num_replicas();

        let mut replicas = Vec::with_capacity(n);
        let mut codec_registry = None;
        match self.tracker {
            TrackerKind::EdgeIndexed(loops) => {
                let mut graphs: Vec<TimestampGraph> = effective_graph
                    .replicas()
                    .map(|i| TimestampGraph::build(&effective_graph, i, loops))
                    .collect();
                for (i, e) in &self.dropped_edges {
                    let tg = &graphs[i.index()];
                    let edges: Vec<EdgeId> =
                        tg.edges().iter().copied().filter(|x| x != e).collect();
                    graphs[i.index()] = TimestampGraph::from_edges(*i, edges);
                }
                let registry = Arc::new(TsRegistry::new(
                    &effective_graph,
                    TimestampGraphs::from_graphs(graphs),
                ));
                codec_registry = Some(registry.clone());
                for i in effective_graph.replicas() {
                    replicas.push(Replica::new_with_mode(
                        i,
                        data_placement.registers_of(i).clone(),
                        Box::new(EdgeTracker::new(registry.clone(), i))
                            as Box<dyn CausalityTracker>,
                        self.pending_mode,
                    ));
                }
            }
            TrackerKind::VectorClock => {
                for i in effective_graph.replicas() {
                    replicas.push(Replica::new_with_mode(
                        i,
                        data_placement.registers_of(i).clone(),
                        Box::new(VcTracker::new(i, n)) as Box<dyn CausalityTracker>,
                        self.pending_mode,
                    ));
                }
            }
            TrackerKind::FullDeps => {
                for i in effective_graph.replicas() {
                    replicas.push(Replica::new_with_mode(
                        i,
                        data_placement.registers_of(i).clone(),
                        Box::new(FullDepsTracker::new(
                            i,
                            data_placement.registers_of(i).clone(),
                        )) as Box<dyn CausalityTracker>,
                        self.pending_mode,
                    ));
                }
            }
        }

        let mut net = SimNetwork::new(self.delay, self.seed);
        let durable = self.session.is_some() || !self.schedule.crashes.is_empty();
        let track_catch_up = !self.schedule.crashes.is_empty();
        let mut crash_queue: VecDeque<(u64, ReplicaId)> = self
            .schedule
            .crashes
            .iter()
            .map(|c| (c.at, c.replica))
            .collect();
        crash_queue.make_contiguous().sort_unstable();
        let restart_queue: VecDeque<(u64, ReplicaId)> = self.schedule.restarts().into();
        net.set_schedule(self.schedule);
        let sessions = self.session.map(|cfg| {
            replicas
                .iter()
                .map(|r| SessionEndpoint::new(r.id(), cfg))
                .collect()
        });
        let logs = durable.then(|| {
            replicas
                .iter()
                .map(|r| RecoveryLog::new(r.clone(), self.snapshot_every))
                .collect()
        });
        // A queued-but-unflushed batch is volatile sender state: under a
        // crash schedule it would die with the replica while the durable
        // outbox claims it was never sent. Eager flushing (singleton
        // batches) keeps outbox and wire in lockstep at every instant.
        let eager_flush = self.batch.batch_count <= 1 || !crash_queue.is_empty();
        System {
            codec: WireCodec::new(self.wire_mode, codec_registry),
            batch: self.batch,
            eager_flush,
            outq: BTreeMap::new(),
            data_placement,
            effective_graph: Arc::new(effective_graph),
            tracker_kind: self.tracker,
            crashed: vec![false; replicas.len()],
            expected: vec![HashSet::new(); replicas.len()],
            catching_up: vec![None; replicas.len()],
            replicas,
            net,
            sessions,
            logs,
            crash_queue,
            restart_queue,
            track_catch_up,
            lost_to_crash: 0,
            catch_up_stats: LatencyStats::new(),
            trace: Trace::new(),
            metrics: SystemMetrics::default(),
            arrival: HashMap::new(),
            issue_time: HashMap::new(),
            vis_stats: LatencyStats::new(),
            latest_version: HashMap::new(),
            update_version: HashMap::new(),
            visible_version: HashMap::new(),
            meta_log: HashMap::new(),
        }
    }
}

/// A running simulated deployment.
pub struct System {
    data_placement: Placement,
    effective_graph: Arc<ShareGraph>,
    tracker_kind: TrackerKind,
    replicas: Vec<Replica>,
    net: SimNetwork<SessionFrame<BatchMsg>>,
    /// Sender-side batching policy.
    batch: BatchPolicy,
    /// True when every update ships immediately as a singleton batch
    /// (policy `batch_count <= 1`, or a crash schedule is installed).
    eager_flush: bool,
    /// Pending batches, one slot per ordered `(src, dst)` pair with
    /// queued updates. `BTreeMap` keeps flush order deterministic.
    outq: BTreeMap<(ReplicaId, ReplicaId), PendingBatch>,
    /// Session endpoints, one per replica, when the reliable-delivery
    /// layer is on (`None` = the paper's reliable-channel model, frames
    /// travel as [`SessionFrame::Bare`]). The session stream unit is a
    /// whole batch.
    sessions: Option<Vec<SessionEndpoint<BatchMsg>>>,
    /// Durable recovery logs, present when the session layer is on or
    /// crashes are scheduled.
    logs: Option<Vec<RecoveryLog>>,
    /// Scripted crash instants, ascending.
    crash_queue: VecDeque<(u64, ReplicaId)>,
    /// Scripted restart instants, ascending.
    restart_queue: VecDeque<(u64, ReplicaId)>,
    /// Which replicas are currently down.
    crashed: Vec<bool>,
    /// Per destination: updates sent to it and not yet applied there
    /// (maintained only when crashes are scheduled).
    expected: Vec<HashSet<UpdateId>>,
    /// Per replica: restart instant + the updates it still owes, while
    /// catching up.
    catching_up: Vec<Option<(u64, HashSet<UpdateId>)>>,
    track_catch_up: bool,
    /// Deliveries discarded because the destination was down.
    lost_to_crash: usize,
    /// Restart → fully-caught-up latency, one sample per restart.
    catch_up_stats: LatencyStats,
    trace: Trace,
    metrics: SystemMetrics,
    /// Arrival tick of each delivered-but-tracked message, keyed by
    /// (issuer, seq, destination).
    arrival: HashMap<(ReplicaId, u64, ReplicaId), u64>,
    /// Issue tick per update.
    issue_time: HashMap<UpdateId, u64>,
    /// Full visibility-latency distribution (issue → apply).
    vis_stats: LatencyStats,
    /// Per-register global version counters (for staleness probes).
    latest_version: HashMap<RegisterId, u64>,
    /// Version assigned to each update.
    update_version: HashMap<UpdateId, u64>,
    /// Highest version applied per (replica, register).
    visible_version: HashMap<(ReplicaId, RegisterId), u64>,
    /// Metadata attached to each issued update (for invariant checking,
    /// e.g. the Lemma 22 monotonicity property of Appendix B). Shares the
    /// issuing message's `Arc` — logging an update never copies counters.
    meta_log: HashMap<UpdateId, Arc<crate::Metadata>>,
    /// Per-recipient wire encoder (projection / compression / raw).
    codec: WireCodec,
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("replicas", &self.replicas.len())
            .field("tracker", &self.tracker_kind)
            .field("now", &self.net.now())
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl System {
    /// Starts building a system over `graph`.
    pub fn builder(graph: ShareGraph) -> SystemBuilder {
        SystemBuilder::new(graph)
    }

    /// The *data* placement (what replicas actually store).
    pub fn data_placement(&self) -> &Placement {
        &self.data_placement
    }

    /// The effective share graph (after dummy registers).
    pub fn effective_graph(&self) -> &ShareGraph {
        &self.effective_graph
    }

    /// Performs a client write of `v` to register `x` at replica `r`,
    /// returning the update id. Non-panicking variant of [`Self::write`].
    ///
    /// # Errors
    ///
    /// [`crate::ReplicaError::NotStored`] if `r` does not store `x`.
    pub fn try_write(
        &mut self,
        r: ReplicaId,
        x: RegisterId,
        v: Value,
    ) -> Result<UpdateId, crate::ReplicaError> {
        if !self.data_placement.stores(r, x) {
            return Err(crate::ReplicaError::NotStored {
                register: x,
                replica: r,
            });
        }
        if self.crashed[r.index()] {
            return Err(crate::ReplicaError::Crashed { replica: r });
        }
        Ok(self.write(r, x, v))
    }

    /// Performs a client write of `v` to register `x` at replica `r`,
    /// returning the update id.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not store `x` — simulated clients only write
    /// registers their replica stores, mirroring the paper's model —
    /// or if `r` is currently crashed (check
    /// [`is_crashed`](Self::is_crashed) first under a crash schedule).
    pub fn write(&mut self, r: ReplicaId, x: RegisterId, v: Value) -> UpdateId {
        assert!(
            !self.crashed[r.index()],
            "replica {r} is crashed and cannot serve writes"
        );
        let recipients = self.recipients_of(r, x);
        let data_holders: Vec<ReplicaId> = self
            .data_placement
            .holders(x)
            .iter()
            .copied()
            .filter(|&h| h != r)
            .collect();
        let (msg, recipients) = self.replicas[r.index()]
            .write(x, v, recipients)
            .unwrap_or_else(|e| panic!("{e}"));
        let id = UpdateId {
            issuer: r,
            seq: msg.seq,
        };
        self.trace.record_issue_with_id(id, x);
        self.issue_time.insert(id, self.net.now());
        let version = self.latest_version.entry(x).or_insert(0);
        *version += 1;
        let version = *version;
        self.update_version.insert(id, version);
        self.visible_version.insert((r, x), version);
        self.meta_log.insert(id, Arc::clone(&msg.meta));
        if let Some(logs) = &mut self.logs {
            let v = msg.value.clone().expect("local writes carry a value");
            logs[r.index()].record_own_write(x, v);
            logs[r.index()].maybe_snapshot(&self.replicas[r.index()]);
        }
        let now = self.net.now();
        // Encode-once fan-out: recipients share the issuer's metadata
        // `Arc` (raw mode) or a per-pair projected frame, and recipients
        // whose pair streams are identical share a single varint pass —
        // the counters are never duplicated or re-encoded per destination.
        let metas = self.codec.encode_fanout(r, &recipients, &msg.meta);
        for (dst, meta) in recipients.into_iter().zip(metas) {
            let m = UpdateMsg {
                issuer: msg.issuer,
                seq: msg.seq,
                register: msg.register,
                value: if data_holders.contains(&dst) {
                    msg.value.clone()
                } else {
                    None // metadata-only recipient
                },
                meta,
                transit: msg.transit.clone(),
            };
            self.account_send(&m);
            if self.track_catch_up {
                self.expected[dst.index()].insert(id);
            }
            self.enqueue_update(r, dst, m, now);
        }
        id
    }

    /// Queues one per-recipient update into the `(src, dst)` pending
    /// batch, flushing on a count/byte trigger. Eager mode ships it
    /// immediately as a singleton.
    fn enqueue_update(&mut self, src: ReplicaId, dst: ReplicaId, m: UpdateMsg, now: u64) {
        if self.eager_flush {
            self.ship_batch(src, dst, BatchMsg::singleton(m));
            return;
        }
        let flush_after = self.batch.flush_after;
        let slot = self.outq.entry((src, dst)).or_insert_with(|| PendingBatch {
            msgs: Vec::new(),
            bytes: 0,
            due: now + flush_after,
        });
        slot.bytes += m.size_bytes();
        slot.msgs.push(m);
        if slot.msgs.len() >= self.batch.batch_count || slot.bytes >= self.batch.batch_bytes {
            let b = self.outq.remove(&(src, dst)).expect("slot just filled");
            self.ship_batch(src, dst, BatchMsg { updates: b.msgs });
        }
    }

    /// Hands one batch to the session layer (or bare network), charging
    /// its true wire size. The durable outbox records the batch before
    /// the frame can reach the network (send-after-durable).
    fn ship_batch(&mut self, src: ReplicaId, dst: ReplicaId, batch: BatchMsg) {
        let now = self.net.now();
        let bytes = batch.size_bytes();
        let frame = if let Some(sessions) = &mut self.sessions {
            if let Some(logs) = &mut self.logs {
                logs[src.index()].record_send(dst, batch.clone());
            }
            sessions[src.index()].send(dst, batch, now)
        } else {
            SessionFrame::Bare(batch)
        };
        let wire = bytes + frame.overhead_bytes();
        self.net.send_sized(src, dst, frame, wire);
    }

    fn recipients_of(&self, r: ReplicaId, x: RegisterId) -> Vec<ReplicaId> {
        match self.tracker_kind {
            TrackerKind::EdgeIndexed(_) | TrackerKind::FullDeps => self
                .effective_graph
                .placement()
                .holders(x)
                .iter()
                .copied()
                .filter(|&h| h != r)
                .collect(),
            TrackerKind::VectorClock => self
                .effective_graph
                .replicas()
                .filter(|&h| h != r)
                .collect(),
        }
    }

    fn account_send(&mut self, m: &UpdateMsg) {
        self.metrics.metadata_bytes += m.meta.size_bytes();
        if let Some(v) = &m.value {
            self.metrics.data_messages += 1;
            self.metrics.payload_bytes += v.size_bytes();
        } else {
            self.metrics.meta_messages += 1;
        }
    }

    /// Reads register `x` at replica `r`.
    pub fn read(&self, r: ReplicaId, x: RegisterId) -> Option<&Value> {
        self.replicas[r.index()].read(x)
    }

    /// Time of the next simulation event of any kind, or `None` at full
    /// quiescence. Events, in priority order at equal instants: scripted
    /// crash, scripted restart, pending-batch flush, network delivery,
    /// retransmission timer.
    fn next_event_time(&self) -> Option<u64> {
        let t_sess = self.sessions.as_ref().and_then(|s| {
            s.iter()
                .enumerate()
                .filter(|(i, _)| !self.crashed[*i])
                .filter_map(|(_, e)| e.next_deadline())
                .min()
        });
        [
            self.crash_queue.front().map(|&(t, _)| t),
            self.restart_queue.front().map(|&(t, _)| t),
            self.outq.values().map(|b| b.due).min(),
            self.net.peek_delivery_time(),
            t_sess,
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Processes the next simulation event: a scripted crash or restart,
    /// a due pending-batch flush, a network delivery (discarded if the
    /// destination is down), or a batch of due retransmissions. Returns
    /// `false` at quiescence.
    pub fn step(&mut self) -> bool {
        let Some(t) = self.next_event_time() else {
            return false;
        };
        if let Some(&(tc, r)) = self.crash_queue.front() {
            if tc <= t {
                self.crash_queue.pop_front();
                self.net.advance_to(tc);
                // Volatile state is conceptually lost here; it is
                // actually discarded at restart, when the replica is
                // rebuilt from its recovery log.
                self.crashed[r.index()] = true;
                // Unflushed batches are volatile sender state too
                // (unreachable in practice: crash schedules force eager
                // flushing, so the queue is already empty).
                self.outq.retain(|&(src, _), _| src != r);
                return true;
            }
        }
        if let Some(&(tr, r)) = self.restart_queue.front() {
            if tr <= t {
                self.restart_queue.pop_front();
                self.do_restart(tr, r);
                return true;
            }
        }
        let due: Vec<(ReplicaId, ReplicaId)> = self
            .outq
            .iter()
            .filter(|(_, b)| b.due <= t)
            .map(|(&k, _)| k)
            .collect();
        if !due.is_empty() {
            self.net.advance_to(t);
            for (src, dst) in due {
                let b = self.outq.remove(&(src, dst)).expect("due batch present");
                self.ship_batch(src, dst, BatchMsg { updates: b.msgs });
            }
            return true;
        }
        if self.net.peek_delivery_time() == Some(t) {
            let (t, env) = self.net.next_delivery().expect("peeked delivery");
            self.deliver_frame(t, env.src, env.dst, env.msg);
            return true;
        }
        // Retransmission timers: poll every live endpoint that is due.
        self.net.advance_to(t);
        if let Some(sessions) = &mut self.sessions {
            let mut sends: Vec<(ReplicaId, ReplicaId, SessionFrame<BatchMsg>)> = Vec::new();
            for (i, e) in sessions.iter_mut().enumerate() {
                if self.crashed[i] {
                    continue;
                }
                if e.next_deadline().is_some_and(|d| d <= t) {
                    let mut out = Vec::new();
                    e.poll(t, &mut out);
                    let src = ReplicaId::new(i as u32);
                    sends.extend(out.into_iter().map(|(dst, f)| (src, dst, f)));
                }
            }
            for (src, dst, f) in sends {
                self.send_frame(src, dst, f);
            }
        }
        true
    }

    /// Ships one session frame, charging its true wire size (payload +
    /// framing overhead). Used for acks, retransmissions, and catch-up —
    /// first transmissions are accounted in [`write`](Self::write).
    fn send_frame(&mut self, src: ReplicaId, dst: ReplicaId, frame: SessionFrame<BatchMsg>) {
        let bytes = frame.payload().map_or(0, BatchMsg::size_bytes) + frame.overhead_bytes();
        self.net.send_sized(src, dst, frame, bytes);
    }

    /// Handles one delivered frame: session decode (dedup / reorder /
    /// ack) when the layer is on, then replica ingestion of every
    /// released payload. Honors the ack-after-durable contract: payloads
    /// hit the recovery log before the response frames hit the network.
    fn deliver_frame(
        &mut self,
        t: u64,
        src: ReplicaId,
        dst: ReplicaId,
        frame: SessionFrame<BatchMsg>,
    ) {
        if self.crashed[dst.index()] {
            self.lost_to_crash += 1;
            return;
        }
        let (payloads, responses) = if let Some(sessions) = &mut self.sessions {
            let mut out = Vec::new();
            let payloads = sessions[dst.index()].on_frame(src, frame, t, &mut out);
            (payloads, out)
        } else {
            let SessionFrame::Bare(m) = frame else {
                unreachable!("sessionless systems only ship bare frames");
            };
            (vec![m], Vec::new())
        };
        if let Some(logs) = &mut self.logs {
            for p in &payloads {
                logs[dst.index()].record_delivery(src, p.clone());
            }
        }
        for p in payloads {
            self.deliver_batch(dst, p, t);
        }
        if let Some(logs) = &mut self.logs {
            logs[dst.index()].maybe_snapshot(&self.replicas[dst.index()]);
        }
        for (peer, f) in responses {
            self.send_frame(dst, peer, f);
        }
    }

    /// Ingests one batch at `dst` — through [`Replica::receive_batch`]'s
    /// once-per-batch fast path when it applies — and records
    /// trace/metrics for every apply it triggers.
    fn deliver_batch(&mut self, dst: ReplicaId, batch: BatchMsg, t: u64) {
        for m in &batch.updates {
            self.arrival.insert((m.issuer, m.seq, dst), t);
        }
        let applied = self.replicas[dst.index()].receive_batch(batch.updates);
        for a in applied {
            let id = UpdateId {
                issuer: a.msg.issuer,
                seq: a.msg.seq,
            };
            self.trace.record_apply(id, dst);
            self.metrics.applies += 1;
            if let Some(arrived) = self.arrival.remove(&(a.msg.issuer, a.msg.seq, dst)) {
                let wait = t - arrived;
                self.metrics.total_pending_wait += wait;
                self.metrics.max_pending_wait = self.metrics.max_pending_wait.max(wait);
            }
            if let Some(&issued) = self.issue_time.get(&id) {
                let vis = t.saturating_sub(issued);
                self.metrics.total_visibility += vis;
                self.metrics.visibility_samples += 1;
                self.metrics.max_visibility = self.metrics.max_visibility.max(vis);
                self.vis_stats.record(vis);
            }
            if let Some(&ver) = self.update_version.get(&id) {
                let slot = self
                    .visible_version
                    .entry((dst, a.msg.register))
                    .or_insert(0);
                *slot = (*slot).max(ver);
            }
            if self.track_catch_up {
                self.expected[dst.index()].remove(&id);
                let mut done = false;
                if let Some((since, owed)) = &mut self.catching_up[dst.index()] {
                    owed.remove(&id);
                    if owed.is_empty() {
                        let lat = t.saturating_sub(*since);
                        self.catch_up_stats.record(lat);
                        done = true;
                    }
                }
                if done {
                    self.catching_up[dst.index()] = None;
                }
            }
        }
    }

    /// Brings a crashed replica back: rebuild from the recovery log
    /// (snapshot + WAL replay), rebuild the session endpoint from the
    /// durable outbox and delivery points, and start the catch-up
    /// clock.
    fn do_restart(&mut self, t: u64, r: ReplicaId) {
        self.net.advance_to(t);
        self.crashed[r.index()] = false;
        let logs = self
            .logs
            .as_ref()
            .expect("crash schedules always build recovery logs");
        self.replicas[r.index()] = logs[r.index()].recover();
        if self.sessions.is_some() {
            let (outbox, mut cums) = {
                let log = &self.logs.as_ref().expect("logs present")[r.index()];
                (log.outbox().clone(), log.recv_cums())
            };
            // Announce the durable cum to *every* neighbor, zero
            // included: a peer whose frames all died with the crash
            // learns immediately that it must re-feed from the start.
            for &peer in self.effective_graph.neighbors(r) {
                cums.entry(peer).or_insert(0);
            }
            let mut out = Vec::new();
            self.sessions.as_mut().expect("sessions present")[r.index()]
                .restart(&outbox, &cums, t, &mut out);
            for (dst, f) in out {
                self.send_frame(r, dst, f);
            }
        }
        if self.track_catch_up {
            let owed = self.expected[r.index()].clone();
            if owed.is_empty() {
                self.catch_up_stats.record(0);
            } else {
                self.catching_up[r.index()] = Some((t, owed));
            }
        }
    }

    /// Runs until no event of any kind remains: network drained, every
    /// retransmission acked, every scripted crash and restart played.
    /// Held links keep their messages parked; release them first if you
    /// used holds. Under a non-healing schedule (a permanently dead
    /// link) with the session layer on this never returns — use
    /// [`run_until`](Self::run_until).
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    /// Processes every event up to and including simulated time
    /// `deadline`, then stops. Returns `true` if the system reached
    /// quiescence at or before the deadline.
    pub fn run_until(&mut self, deadline: u64) -> bool {
        loop {
            match self.next_event_time() {
                None => return true,
                Some(t) if t > deadline => {
                    self.net.advance_to(deadline);
                    return false;
                }
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// True if the network is drained, no replica has buffered updates
    /// it could not apply, every session stream is fully acked, and no
    /// scripted event is still due.
    pub fn is_settled(&self) -> bool {
        self.net.is_quiescent()
            && self.outq.is_empty()
            && self.replicas.iter().all(|r| r.pending_count() == 0)
            && self.crash_queue.is_empty()
            && self.restart_queue.is_empty()
            && self
                .sessions
                .as_ref()
                .is_none_or(|s| s.iter().all(SessionEndpoint::is_idle))
    }

    /// Total updates stuck in pending buffers (non-zero after
    /// `run_to_quiescence` means the protocol lost liveness).
    pub fn stuck_pending(&self) -> usize {
        self.replicas.iter().map(|r| r.pending_count()).sum()
    }

    /// The execution trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Checks the trace against replica-centric causal consistency over
    /// the *data* placement.
    pub fn check(&self) -> CheckReport {
        check(&self.trace, &self.data_placement)
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &SystemMetrics {
        &self.metrics
    }

    /// Per-replica timestamp sizes in counters.
    pub fn timestamp_counters(&self) -> Vec<usize> {
        self.replicas
            .iter()
            .map(|r| r.tracker().num_counters())
            .collect()
    }

    /// Direct access to a replica (diagnostics, tests).
    pub fn replica(&self, r: ReplicaId) -> &Replica {
        &self.replicas[r.index()]
    }

    /// Network control: hold a directed link (messages park until
    /// released) — used to build the adversarial executions of Theorem 8.
    pub fn hold_link(&mut self, src: ReplicaId, dst: ReplicaId) {
        self.net.hold(src, dst);
    }

    /// Network control: release a held link.
    pub fn release_link(&mut self, src: ReplicaId, dst: ReplicaId) {
        self.net.release(src, dst);
    }

    /// Current simulated time in ticks.
    pub fn now(&self) -> u64 {
        self.net.now()
    }

    /// The full visibility-latency distribution (issue → apply, ticks).
    pub fn visibility_stats(&self) -> LatencyStats {
        self.vis_stats.clone()
    }

    /// Raw network statistics (including fault-plan drop/duplicate
    /// counts and wire-codec demotions).
    pub fn net_stats(&self) -> prcc_net::NetStats {
        let mut stats = self.net.stats();
        stats.codec_demotions = self.codec.stats().demotions;
        stats
    }

    /// Wire-codec counters: frames, encode-once sharing, demotions, and
    /// adaptive fallbacks.
    pub fn codec_stats(&self) -> crate::codec::CodecStats {
        self.codec.stats()
    }

    /// Aggregated session-layer statistics across all endpoints, or
    /// `None` when the session layer is off.
    pub fn session_stats(&self) -> Option<SessionStats> {
        self.sessions.as_ref().map(|s| {
            let mut total = SessionStats::default();
            for e in s {
                total.merge(&e.stats());
            }
            total
        })
    }

    /// Restart → fully-caught-up latency distribution (one sample per
    /// scripted restart that has completed catch-up).
    pub fn catch_up_stats(&self) -> LatencyStats {
        self.catch_up_stats.clone()
    }

    /// True if `r` is currently down (between a scripted crash and its
    /// restart).
    pub fn is_crashed(&self, r: ReplicaId) -> bool {
        self.crashed[r.index()]
    }

    /// Deliveries discarded because the destination replica was down.
    pub fn lost_to_crash(&self) -> usize {
        self.lost_to_crash
    }

    /// The metadata (timestamp) that was attached to update `id` when it
    /// was issued, if known.
    pub fn metadata_of(&self, id: UpdateId) -> Option<&crate::Metadata> {
        self.meta_log.get(&id).map(Arc::as_ref)
    }

    /// Read staleness probe: how many globally issued versions of `x` the
    /// copy visible at `r` lags behind. 0 means fully fresh (causal
    /// consistency permits non-zero staleness; this measures how much).
    pub fn read_staleness(&self, r: ReplicaId, x: RegisterId) -> u64 {
        let latest = self.latest_version.get(&x).copied().unwrap_or(0);
        let visible = self.visible_version.get(&(r, x)).copied().unwrap_or(0);
        latest.saturating_sub(visible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::topology;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }

    #[test]
    fn ring_converges_and_is_consistent() {
        let mut sys = System::builder(topology::ring(5)).seed(11).build();
        for round in 0..10u64 {
            for i in 0..5u32 {
                sys.write(r(i), x(i), Value::from(round));
            }
        }
        sys.run_to_quiescence();
        assert!(sys.is_settled(), "stuck: {}", sys.stuck_pending());
        let rep = sys.check();
        assert!(rep.is_consistent(), "{:?}", rep.violations);
        // Register i is shared by replicas i and i+1: both read the value.
        assert_eq!(sys.read(r(1), x(0)), Some(&Value::from(9u64)));
    }

    #[test]
    fn vector_clock_baseline_converges() {
        let mut sys = System::builder(topology::ring(4))
            .tracker(TrackerKind::VectorClock)
            .seed(3)
            .build();
        for i in 0..4u32 {
            sys.write(r(i), x(i), Value::from(i as u64));
        }
        sys.run_to_quiescence();
        assert!(sys.is_settled());
        assert!(sys.check().is_consistent());
        // VC mode broadcasts metadata: 3 messages per write + data overlap.
        assert_eq!(
            sys.metrics().data_messages + sys.metrics().meta_messages,
            4 * 3
        );
        assert_eq!(sys.metrics().data_messages, 4); // one per write (other holder)
    }

    #[test]
    fn partial_replication_sends_fewer_messages() {
        let g = topology::ring(6);
        let mut part = System::builder(g.clone()).seed(1).build();
        let mut full = System::builder(g)
            .tracker(TrackerKind::VectorClock)
            .seed(1)
            .build();
        for i in 0..6u32 {
            part.write(r(i), x(i), Value::from(1u64));
            full.write(r(i), x(i), Value::from(1u64));
        }
        part.run_to_quiescence();
        full.run_to_quiescence();
        let pm = part.metrics();
        let fm = full.metrics();
        assert!(pm.data_messages + pm.meta_messages < fm.data_messages + fm.meta_messages);
        assert!(part.check().is_consistent());
        assert!(full.check().is_consistent());
    }

    #[test]
    fn causal_chain_respected_under_adversarial_delays() {
        // Triangle sharing one register; wide delays to force reordering.
        let g = ShareGraph::new(Placement::builder(3).share(0, [0, 1, 2]).build());
        for seed in 0..10 {
            let mut sys = System::builder(g.clone())
                .delay(DelayModel::Uniform { min: 1, max: 200 })
                .seed(seed)
                .build();
            // Chain: r0 writes, then (after delivery) r1 writes, etc.
            sys.write(r(0), x(0), Value::from(1u64));
            sys.run_to_quiescence();
            sys.write(r(1), x(0), Value::from(2u64));
            sys.write(r(1), x(0), Value::from(3u64));
            sys.write(r(0), x(0), Value::from(4u64));
            sys.run_to_quiescence();
            assert!(sys.is_settled(), "seed {seed}");
            let rep = sys.check();
            assert!(rep.is_consistent(), "seed {seed}: {:?}", rep.violations);
        }
    }

    #[test]
    fn figure5_system_runs_consistently() {
        let g = prcc_sharegraph::paper_examples::figure5();
        let mut sys = System::builder(g.clone()).seed(77).build();
        // Write every register at each of its holders, twice.
        for round in 0..2u64 {
            for xr in 0..g.placement().num_registers() as u32 {
                for &h in g.placement().holders(x(xr)) {
                    sys.write(h, x(xr), Value::from(round));
                }
            }
        }
        sys.run_to_quiescence();
        assert!(sys.is_settled());
        assert!(sys.check().is_consistent());
    }

    #[test]
    fn dummy_registers_add_meta_messages() {
        // Path 0-1-2; dummy copy of register 0 at replica 2 turns the path
        // into a triangle-ish metadata graph: replica 2 receives meta-only
        // updates for register 0.
        let g = topology::path(3);
        let mut sys = System::builder(g).dummy(r(2), x(0)).seed(5).build();
        sys.write(r(0), x(0), Value::from(9u64));
        sys.run_to_quiescence();
        assert!(sys.is_settled());
        assert_eq!(sys.metrics().data_messages, 1); // to replica 1
        assert_eq!(sys.metrics().meta_messages, 1); // to replica 2
                                                    // Replica 2 does NOT store the value.
        assert_eq!(sys.read(r(2), x(0)), None);
        assert!(sys.check().is_consistent());
    }

    #[test]
    fn oblivious_replica_loses_consistency() {
        // Drop the incoming edge e_01 from replica 1's timestamp graph:
        // replica 1 becomes oblivious to updates from r0 (Theorem 8's
        // incident-edge case). The conservative predicate then refuses
        // every update from r0 — the violation class is LIVENESS (both
        // updates stuck pending forever, reads stale), never a safety
        // inversion, for every delivery schedule.
        let e01 = EdgeId::new(r(0), r(1));
        for seed in 0..30 {
            let mut sys = System::builder(topology::path(2))
                .drop_edge(r(1), e01)
                .delay(DelayModel::Uniform { min: 1, max: 100 })
                .seed(seed)
                .build();
            sys.write(r(0), x(0), Value::from(1u64));
            sys.write(r(0), x(0), Value::from(2u64));
            sys.run_to_quiescence();
            let rep = sys.check();
            assert_eq!(
                rep.liveness_violations().count(),
                2,
                "seed {seed}: both updates must be stuck at the oblivious replica"
            );
            assert_eq!(
                rep.safety_violations().count(),
                0,
                "seed {seed}: the conservative predicate never misorders applies"
            );
            assert_eq!(sys.stuck_pending(), 2, "seed {seed}");
            assert_eq!(
                sys.read(r(1), x(0)),
                None,
                "seed {seed}: replica 1 never learns the value"
            );
        }
    }

    #[test]
    #[should_panic(expected = "not stored")]
    fn write_to_wrong_replica_panics() {
        let mut sys = System::builder(topology::path(3)).build();
        sys.write(r(0), x(1), Value::from(0u64)); // register 1 lives at 1,2
    }
}
