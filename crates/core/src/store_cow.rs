//! Sharded copy-on-write register store: O(Δ) snapshot publishes.
//!
//! The threaded runtime publishes an immutable [`ReplicaView`] after
//! every state change so reader threads never enqueue into the replica
//! thread. A flat `HashMap` store makes that publish O(store) — the
//! whole map (values *and* provenance) is deep-cloned per write, so
//! per-write cost grows with register count, the opposite of the
//! metadata frugality the rest of the stack fights for.
//!
//! [`CowStore`] fixes the asymptotics with plain `Arc` sharing: the
//! store is a fixed power-of-two array of `Arc<Shard>` hash maps
//! (value + provenance together, so a snapshot can never pair a value
//! with the wrong source). Publishing is [`CowStore::share`] — clone
//! the `Vec` of `Arc`s, O(shards) refcount bumps, no data copied.
//! Mutation goes through [`Arc::make_mut`]: a shard still shared with
//! an outstanding snapshot is cloned once (that clone *is* the
//! dirty-shard rebuild — sharing makes the dirty set implicit in the
//! refcounts), while a shard no snapshot holds is written in place for
//! free. Per publish epoch each shard is cloned at most once, so the
//! amortised publish cost is O(registers changed since the last
//! publish), not O(store).
//!
//! The old clone-the-world behaviour stays available as the
//! differential oracle via [`StoreMode::Clone`] (flat deep-cloned
//! views), per this repo's every-layer-has-an-off-switch convention.
//!
//! [`ReplicaView`]: crate::runtime::ReplicaView

use crate::value::Value;
use prcc_checker::UpdateId;
use prcc_sharegraph::RegisterId;
use std::collections::HashMap;
use std::sync::Arc;

/// How the threaded runtime materialises published snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreMode {
    /// Sharded copy-on-write publishes: O(registers changed since the
    /// last publish) per publish.
    #[default]
    Cow,
    /// The original clone-the-world publish — O(store) per publish.
    /// Kept as the differential oracle: a [`StoreMode::Clone`] run must
    /// be byte-identical to a [`StoreMode::Cow`] run on the same seeded
    /// workload.
    Clone,
}

/// One stored register: its current value and the update that produced
/// it. Registers written through the routed protocol's payload path
/// carry no provenance (`src: None`) — the producing update is unknown
/// to the holder.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The register's current value.
    pub value: Value,
    /// The update whose value this is, when known.
    pub src: Option<UpdateId>,
}

type Shard = HashMap<RegisterId, Entry>;

/// Spreads register ids across shards: Fibonacci multiply-shift so
/// dense id ranges (the common case — topology generators number
/// registers 0..k) don't alias into one shard, then mask into the
/// power-of-two shard array. Using the high bits avoids a variable
/// shift that would be UB-adjacent for the 1-shard store.
fn shard_index(x: RegisterId, mask: u64) -> usize {
    ((u64::from(x.raw()).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & mask) as usize
}

/// Picks the shard count for a store expected to hold `registers`
/// registers: ~16 registers per shard, clamped to [1, 1024] so tiny
/// stores pay no sharding overhead and huge ones keep publishes cheap.
fn shard_count(registers: usize) -> usize {
    (registers / 16).next_power_of_two().clamp(1, 1024)
}

/// The sharded copy-on-write store backing [`Replica`].
///
/// Behaves like a `HashMap<RegisterId, Entry>`; the sharding only
/// matters to the publish path ([`CowStore::share`]).
///
/// [`Replica`]: crate::Replica
#[derive(Debug, Clone)]
pub struct CowStore {
    shards: Vec<Arc<Shard>>,
    mask: u64,
    /// Shards cloned by [`Arc::make_mut`] because a snapshot still held
    /// them — the observable trace of lazy copy-on-write, counted for
    /// the non-vacuity tests.
    cow_clones: u64,
}

impl CowStore {
    /// An empty store sized for `registers` registers.
    pub fn new(registers: usize) -> Self {
        let n = shard_count(registers);
        CowStore {
            shards: (0..n).map(|_| Arc::new(Shard::new())).collect(),
            mask: (n - 1) as u64,
            cow_clones: 0,
        }
    }

    fn shard(&self, x: RegisterId) -> &Shard {
        &self.shards[shard_index(x, self.mask)]
    }

    /// The register's current value.
    pub fn get(&self, x: RegisterId) -> Option<&Value> {
        self.shard(x).get(&x).map(|e| &e.value)
    }

    /// The update that produced the register's current value, if known.
    pub fn src_of(&self, x: RegisterId) -> Option<UpdateId> {
        self.shard(x).get(&x).and_then(|e| e.src)
    }

    /// Writes `x`, cloning the shard first iff a snapshot still shares
    /// it (lazy copy-on-write).
    pub fn insert(&mut self, x: RegisterId, value: Value, src: Option<UpdateId>) {
        let shard = &mut self.shards[shard_index(x, self.mask)];
        if Arc::strong_count(shard) > 1 {
            self.cow_clones += 1;
        }
        Arc::make_mut(shard).insert(x, Entry { value, src });
    }

    /// Number of registers stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True when no register is stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Iterates all stored registers, in no particular order.
    pub fn iter(&self) -> impl Iterator<Item = (&RegisterId, &Entry)> {
        self.shards.iter().flat_map(|s| s.iter())
    }

    /// Deep-clones the store into a flat value map — the
    /// [`StoreMode::Clone`] publish path, and compatibility surface for
    /// callers that want a plain `HashMap`.
    pub fn flat_store(&self) -> HashMap<RegisterId, Value> {
        self.iter().map(|(x, e)| (*x, e.value.clone())).collect()
    }

    /// Deep-clones the provenance side into a flat map (registers with
    /// unknown provenance absent, matching the old `store_src` map).
    pub fn flat_src(&self) -> HashMap<RegisterId, UpdateId> {
        self.iter()
            .filter_map(|(x, e)| e.src.map(|u| (*x, u)))
            .collect()
    }

    /// The O(Δ) publish: an immutable view sharing every shard with the
    /// live store. Costs O(shards) refcount bumps; the next write to a
    /// shared shard pays that shard's clone (and only that shard's).
    pub fn share(&self) -> SharedShards {
        SharedShards {
            shards: self.shards.clone(),
            mask: self.mask,
        }
    }

    /// How many shard clones lazy copy-on-write has performed — the
    /// non-vacuity counter proving publishes are actually shared.
    pub fn cow_clones(&self) -> u64 {
        self.cow_clones
    }
}

/// An immutable snapshot of a [`CowStore`]: the shard array frozen at
/// publish time. Shards are shared with the live store until the next
/// write touches them, so two consecutive snapshots alias every shard
/// no write separated (see [`SharedShards::shards_shared_with`]).
#[derive(Debug, Clone)]
pub struct SharedShards {
    shards: Vec<Arc<Shard>>,
    mask: u64,
}

impl SharedShards {
    /// The register's value at publish time.
    pub fn get(&self, x: RegisterId) -> Option<&Value> {
        self.shards[shard_index(x, self.mask)]
            .get(&x)
            .map(|e| &e.value)
    }

    /// The update that produced the register's value at publish time.
    pub fn src_of(&self, x: RegisterId) -> Option<UpdateId> {
        self.shards[shard_index(x, self.mask)]
            .get(&x)
            .and_then(|e| e.src)
    }

    /// Iterates the snapshot's registers, in no particular order.
    pub fn iter(&self) -> impl Iterator<Item = (&RegisterId, &Entry)> {
        self.shards.iter().flat_map(|s| s.iter())
    }

    /// `(aliased, total)`: how many shards this snapshot physically
    /// shares (same `Arc` allocation) with `other`. The shard-aliasing
    /// non-vacuity test asserts `aliased > 0` across consecutive
    /// publishes — i.e. the COW store really does skip untouched
    /// shards.
    pub fn shards_shared_with(&self, other: &SharedShards) -> (usize, usize) {
        let aliased = self
            .shards
            .iter()
            .zip(&other.shards)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count();
        (aliased, self.shards.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::ReplicaId;

    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }

    fn uid(issuer: u32, seq: u64) -> UpdateId {
        UpdateId {
            issuer: ReplicaId::new(issuer),
            seq,
        }
    }

    #[test]
    fn shard_count_scales_and_clamps() {
        assert_eq!(shard_count(0), 1);
        assert_eq!(shard_count(2), 1);
        assert_eq!(shard_count(64), 4);
        assert_eq!(shard_count(1024), 64);
        assert_eq!(shard_count(16_384), 1024);
        assert_eq!(shard_count(1 << 30), 1024);
    }

    #[test]
    fn insert_get_and_provenance_round_trip() {
        let mut s = CowStore::new(64);
        assert!(s.is_empty());
        s.insert(x(3), Value::from(7u64), Some(uid(1, 0)));
        s.insert(x(40), Value::from(8u64), None);
        assert_eq!(s.get(x(3)), Some(&Value::from(7u64)));
        assert_eq!(s.src_of(x(3)), Some(uid(1, 0)));
        assert_eq!(s.get(x(40)), Some(&Value::from(8u64)));
        assert_eq!(s.src_of(x(40)), None, "payload-path write has no src");
        assert_eq!(s.len(), 2);
        assert_eq!(s.flat_store().len(), 2);
        assert_eq!(s.flat_src().len(), 1);
    }

    #[test]
    fn overwrite_replaces_value_and_src() {
        let mut s = CowStore::new(4);
        s.insert(x(0), Value::from(1u64), Some(uid(0, 0)));
        s.insert(x(0), Value::from(2u64), Some(uid(2, 9)));
        assert_eq!(s.get(x(0)), Some(&Value::from(2u64)));
        assert_eq!(s.src_of(x(0)), Some(uid(2, 9)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn unshared_writes_never_clone() {
        let mut s = CowStore::new(16_384);
        for i in 0..1000 {
            s.insert(x(i), Value::from(u64::from(i)), None);
        }
        assert_eq!(s.cow_clones(), 0, "no snapshot outstanding, no clones");
    }

    #[test]
    fn shared_shard_cloned_once_per_publish_epoch() {
        let mut s = CowStore::new(16_384);
        for i in 0..1024 {
            s.insert(x(i), Value::from(0u64), None);
        }
        let snap = s.share();
        // Two writes into the same shard: first pays the clone, second
        // hits the now-unique shard in place.
        s.insert(x(0), Value::from(1u64), None);
        let after_first = s.cow_clones();
        assert!(after_first >= 1);
        s.insert(x(0), Value::from(2u64), None);
        assert_eq!(s.cow_clones(), after_first, "second write is in-place");
        // The snapshot still sees publish-time state.
        assert_eq!(snap.get(x(0)), Some(&Value::from(0u64)));
        assert_eq!(s.get(x(0)), Some(&Value::from(2u64)));
    }

    #[test]
    fn consecutive_publishes_alias_untouched_shards() {
        let mut s = CowStore::new(16_384);
        for i in 0..16_384 {
            s.insert(x(i), Value::from(0u64), None);
        }
        let a = s.share();
        s.insert(x(0), Value::from(1u64), None);
        let b = s.share();
        let (aliased, total) = a.shards_shared_with(&b);
        assert_eq!(total, 1024);
        assert_eq!(aliased, total - 1, "exactly the written shard diverges");
        // Identical publishes alias everything.
        let c = s.share();
        assert_eq!(b.shards_shared_with(&c), (total, total));
    }

    #[test]
    fn clone_of_store_diverges_without_affecting_original() {
        let mut s = CowStore::new(8);
        s.insert(x(1), Value::from(1u64), Some(uid(0, 0)));
        let mut t = s.clone();
        t.insert(x(1), Value::from(2u64), Some(uid(0, 1)));
        assert_eq!(s.get(x(1)), Some(&Value::from(1u64)));
        assert_eq!(t.get(x(1)), Some(&Value::from(2u64)));
    }

    #[test]
    fn share_matches_flat_views() {
        let mut s = CowStore::new(256);
        for i in 0..200 {
            let src = (i % 3 != 0).then(|| uid(i % 5, u64::from(i)));
            s.insert(x(i * 7 % 256), Value::from(u64::from(i)), src);
        }
        let snap = s.share();
        let flat = s.flat_store();
        let srcs = s.flat_src();
        assert_eq!(flat.len(), s.len());
        for (reg, e) in snap.iter() {
            assert_eq!(flat.get(reg), Some(&e.value));
            assert_eq!(srcs.get(reg).copied(), e.src);
            assert_eq!(snap.get(*reg), Some(&e.value));
            assert_eq!(snap.src_of(*reg), e.src);
        }
    }
}
