//! Differential testing of the pending-delivery schedulers and the wire
//! codec.
//!
//! [`PendingMode::Scan`] (the obvious re-scan implementation) is the
//! oracle; [`PendingMode::Wakeup`] (the dependency-counting index) must be
//! observationally identical on every seeded execution: same applied
//! event sequence, same final stores, same checker verdict, same stuck
//! count — while evaluating the predicate at most as often.
//!
//! Analogously, [`WireMode::Raw`] (full timestamps on the wire) is the
//! oracle for [`WireMode::Projected`] and [`WireMode::Compressed`]: the
//! per-pair projected/derived/delta-framed metadata must produce the same
//! traces, stores, and checker verdicts while never putting more metadata
//! bytes on the wire.
//!
//! Each property runs 100 deterministic cases by default
//! (`PROPTEST_CASES` overrides) over ring / binary-tree / clique share
//! graphs with adversarial `Uniform{1,200}` delivery delays.

use prcc_core::{PendingMode, System, TrackerKind, Value, WireMode};
use prcc_net::DelayModel;
use prcc_sharegraph::{topology, RegisterId, ReplicaId, ShareGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_topology(sel: usize, n: usize) -> ShareGraph {
    match sel % 3 {
        0 => topology::ring(n),
        1 => topology::binary_tree(n),
        _ => topology::clique_full(n, 2),
    }
}

/// One deterministic run: a seeded write/step interleaving over `g`.
/// Returns (system, total predicate evaluations).
fn run(g: &ShareGraph, tracker: TrackerKind, mode: PendingMode, seed: u64) -> (System, u64) {
    run_wire(g, tracker, mode, WireMode::default(), seed)
}

/// [`run`] with an explicit wire mode.
fn run_wire(
    g: &ShareGraph,
    tracker: TrackerKind,
    mode: PendingMode,
    wire: WireMode,
    seed: u64,
) -> (System, u64) {
    let mut sys = System::builder(g.clone())
        .tracker(tracker)
        .pending_mode(mode)
        .wire_mode(wire)
        .delay(DelayModel::Uniform { min: 1, max: 200 })
        .seed(seed)
        .build();
    // The workload RNG is shared by construction (same seed both runs):
    // interleave writes with partial network steps so pending buffers
    // actually fill up before each drain.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
    let n = g.num_replicas();
    let writes = 4 * n as u64;
    for w in 0..writes {
        let r = ReplicaId::new(rng.gen_range(0..n as u32));
        let regs: Vec<RegisterId> = g.placement().registers_of(r).iter().collect();
        let x = regs[rng.gen_range(0..regs.len())];
        sys.write(r, x, Value::from(w));
        for _ in 0..rng.gen_range(0usize..4) {
            sys.step();
        }
    }
    sys.run_to_quiescence();
    let evals = (0..n)
        .map(|i| sys.replica(ReplicaId::new(i as u32)).predicate_evals())
        .sum();
    (sys, evals)
}

/// Asserts the two modes are observationally identical on one execution.
fn assert_equivalent(g: &ShareGraph, tracker: TrackerKind, seed: u64) {
    let (scan, scan_evals) = run(g, tracker, PendingMode::Scan, seed);
    let (wake, wake_evals) = run(g, tracker, PendingMode::Wakeup, seed);

    // Identical event (issue + apply) sequences.
    prop_assert_eq!(scan.trace().events(), wake.trace().events());

    // Identical stores at every replica.
    for i in g.replicas() {
        for x in g.placement().registers_of(i).iter() {
            prop_assert_eq!(
                scan.read(i, x),
                wake.read(i, x),
                "store mismatch at {:?} register {:?}",
                i,
                x
            );
        }
        prop_assert_eq!(
            scan.replica(i).pending_count(),
            wake.replica(i).pending_count()
        );
    }

    // Identical checker verdicts (violation lists included).
    let (sr, wr) = (scan.check(), wake.check());
    prop_assert_eq!(sr.violations, wr.violations);
    prop_assert_eq!(scan.stuck_pending(), wake.stuck_pending());

    // The index never evaluates the predicate more often than the scan.
    prop_assert!(
        wake_evals <= scan_evals,
        "wakeup did more predicate work: {} > {}",
        wake_evals,
        scan_evals
    );
}

/// Asserts that every wire mode yields the same observable execution, and
/// that the compressed mode's wire bytes never exceed raw's.
fn assert_wire_equivalent(g: &ShareGraph, tracker: TrackerKind, seed: u64) {
    let (raw, _) = run_wire(g, tracker, PendingMode::default(), WireMode::Raw, seed);
    let (proj, _) = run_wire(
        g,
        tracker,
        PendingMode::default(),
        WireMode::Projected,
        seed,
    );
    let (comp, _) = run_wire(
        g,
        tracker,
        PendingMode::default(),
        WireMode::Compressed,
        seed,
    );
    let (adapt, _) = run_wire(g, tracker, PendingMode::default(), WireMode::Adaptive, seed);

    for other in [&proj, &comp, &adapt] {
        // Identical event (issue + apply) sequences.
        prop_assert_eq!(raw.trace().events(), other.trace().events());
        // Identical stores and pending buffers at every replica.
        for i in g.replicas() {
            for x in g.placement().registers_of(i).iter() {
                prop_assert_eq!(
                    raw.read(i, x),
                    other.read(i, x),
                    "store mismatch at {:?} register {:?}",
                    i,
                    x
                );
            }
            prop_assert_eq!(
                raw.replica(i).pending_count(),
                other.replica(i).pending_count()
            );
        }
        // Identical checker verdicts.
        let (rr, or) = (raw.check(), other.check());
        prop_assert_eq!(rr.violations, or.violations);
        prop_assert_eq!(raw.stuck_pending(), other.stuck_pending());
    }

    // Projection can only shrink metadata; compression can only shrink it
    // further (derived rows dropped, deltas varint-framed).
    let (rb, pb, cb) = (
        raw.metrics().metadata_bytes,
        proj.metrics().metadata_bytes,
        comp.metrics().metadata_bytes,
    );
    prop_assert!(pb <= rb, "projected {} > raw {}", pb, rb);
    prop_assert!(cb <= pb, "compressed {} > projected {}", cb, pb);
    // Adaptive only ever falls back toward raw, never past it.
    let ab = adapt.metrics().metadata_bytes;
    prop_assert!(ab <= rb, "adaptive {} > raw {}", ab, rb);
    // Registry-built layouts verify at construction: no run may demote.
    for sys in [&raw, &proj, &comp, &adapt] {
        prop_assert_eq!(sys.net_stats().codec_demotions, 0);
    }
}

proptest! {
    /// Edge-indexed tracker across ring / tree / clique topologies.
    #[test]
    fn scan_and_wakeup_agree_edge_indexed(
        topo in 0usize..3,
        n in 3usize..8,
        seed in 0u64..1_000_000,
    ) {
        let g = build_topology(topo, n);
        assert_equivalent(&g, TrackerKind::EdgeIndexed(prcc_sharegraph::LoopConfig::EXHAUSTIVE), seed);
    }

    /// The trait-default (BlockedUnknown) path: vector-clock tracker.
    #[test]
    fn scan_and_wakeup_agree_vector_clock(
        topo in 0usize..3,
        n in 3usize..7,
        seed in 0u64..1_000_000,
    ) {
        let g = build_topology(topo, n);
        assert_equivalent(&g, TrackerKind::VectorClock, seed);
    }

    /// The trait-default path with growing metadata: full dependency lists.
    #[test]
    fn scan_and_wakeup_agree_full_deps(
        topo in 0usize..3,
        n in 3usize..6,
        seed in 0u64..1_000_000,
    ) {
        let g = build_topology(topo, n);
        assert_equivalent(&g, TrackerKind::FullDeps, seed);
    }

    /// Wire-codec differential, edge-indexed tracker: raw vs projected vs
    /// compressed agree on every observable, across topologies.
    #[test]
    fn wire_modes_agree_edge_indexed(
        topo in 0usize..3,
        n in 3usize..8,
        seed in 0u64..1_000_000,
    ) {
        let g = build_topology(topo, n);
        assert_wire_equivalent(&g, TrackerKind::EdgeIndexed(prcc_sharegraph::LoopConfig::EXHAUSTIVE), seed);
    }

    /// Wire-codec differential under the baselines: the codec must be a
    /// pure pass-through (their metadata is not edge-indexed), so all
    /// modes trivially agree — byte counts included.
    #[test]
    fn wire_modes_agree_baselines(
        topo in 0usize..3,
        n in 3usize..6,
        vc in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let g = build_topology(topo, n);
        let tracker = if vc == 0 { TrackerKind::VectorClock } else { TrackerKind::FullDeps };
        assert_wire_equivalent(&g, tracker, seed);
    }

    /// Both axes at once: the wakeup pending index must stay equivalent to
    /// the scan oracle when messages carry projected/compressed frames.
    #[test]
    fn scan_and_wakeup_agree_under_compression(
        topo in 0usize..3,
        n in 3usize..8,
        seed in 0u64..1_000_000,
    ) {
        let g = build_topology(topo, n);
        let tracker = TrackerKind::EdgeIndexed(prcc_sharegraph::LoopConfig::EXHAUSTIVE);
        let (scan, scan_evals) = run_wire(&g, tracker, PendingMode::Scan, WireMode::Compressed, seed);
        let (wake, wake_evals) = run_wire(&g, tracker, PendingMode::Wakeup, WireMode::Compressed, seed);
        prop_assert_eq!(scan.trace().events(), wake.trace().events());
        let (sr, wr) = (scan.check(), wake.check());
        prop_assert_eq!(sr.violations, wr.violations);
        prop_assert_eq!(scan.stuck_pending(), wake.stuck_pending());
        prop_assert!(wake_evals <= scan_evals);
    }
}
