//! Behavioural tests of the simulated deployment beyond the happy path:
//! staleness probes, latency distributions, geo placements, and
//! interactions between builder options.

use prcc_core::{System, TrackerKind, Value};
use prcc_net::DelayModel;
use prcc_sharegraph::{topology, LoopConfig, RegisterId, ReplicaId};

fn r(i: u32) -> ReplicaId {
    ReplicaId::new(i)
}
fn x(i: u32) -> RegisterId {
    RegisterId::new(i)
}

#[test]
fn staleness_tracks_unpropagated_writes() {
    let mut sys = System::builder(topology::path(2))
        .delay(DelayModel::Fixed(50))
        .seed(0)
        .build();
    assert_eq!(sys.read_staleness(r(1), x(0)), 0); // nothing written
    sys.write(r(0), x(0), Value::from(1u64));
    sys.write(r(0), x(0), Value::from(2u64));
    // In flight: replica 1 is two versions behind.
    assert_eq!(sys.read_staleness(r(1), x(0)), 2);
    assert_eq!(sys.read_staleness(r(0), x(0)), 0); // writer is fresh
    sys.run_to_quiescence();
    assert_eq!(sys.read_staleness(r(1), x(0)), 0);
}

#[test]
fn visibility_stats_percentiles_populated() {
    let mut sys = System::builder(topology::ring(4))
        .delay(DelayModel::Uniform { min: 5, max: 50 })
        .seed(9)
        .build();
    for round in 0..10u64 {
        for i in 0..4u32 {
            sys.write(r(i), x(i), Value::from(round));
        }
    }
    sys.run_to_quiescence();
    let mut stats = sys.visibility_stats();
    assert_eq!(stats.len(), 40); // one recipient per write
    assert!(stats.p50() >= 5);
    assert!(stats.p99() <= sys.metrics().max_visibility);
    assert!(stats.mean() > 0.0);
}

#[test]
fn geo_placement_full_run() {
    let g = topology::geo_placement(4, 2, 1, 3);
    let mut sys = System::builder(g.clone()).seed(3).build();
    for round in 0..3u64 {
        for i in g.replicas() {
            for reg in g.placement().registers_of(i).iter() {
                // Each DC owner writes each register it stores once per
                // round; only one DC per register to keep values
                // deterministic.
                if g.placement().holders(reg).first() == Some(&i) {
                    sys.write(i, reg, Value::from(round));
                }
            }
        }
        sys.run_to_quiescence();
    }
    assert!(sys.is_settled());
    assert!(sys.check().is_consistent());
    // The global register reached every DC.
    let global = RegisterId::new((g.placement().num_registers() - 1) as u32);
    for i in g.replicas() {
        assert_eq!(sys.read(i, global), Some(&Value::from(2u64)), "{i}");
    }
}

#[test]
fn dummies_ignored_under_vector_clock() {
    // VC mode already broadcasts metadata; dummy registers must not
    // change message counts.
    let g = topology::path(3);
    let run = |with_dummy: bool| {
        let mut b = System::builder(topology::path(3))
            .tracker(TrackerKind::VectorClock)
            .seed(1);
        if with_dummy {
            b = b.dummy(r(2), x(0));
        }
        let mut sys = b.build();
        sys.write(r(0), x(0), Value::from(1u64));
        sys.run_to_quiescence();
        (sys.metrics().data_messages, sys.metrics().meta_messages)
    };
    assert_eq!(run(false), run(true));
    let _ = g;
}

#[test]
fn truncated_and_exhaustive_agree_on_trees() {
    // Trees have no loops: any loop bound yields identical timestamp
    // graphs, so behaviour must match exactly.
    let g = topology::binary_tree(7);
    let run = |cfg: LoopConfig| {
        let mut sys = System::builder(topology::binary_tree(7))
            .tracker(TrackerKind::EdgeIndexed(cfg))
            .delay(DelayModel::Fixed(2))
            .seed(5)
            .build();
        for reg in 0..6u32 {
            let holder = *g.placement().holders(x(reg)).first().unwrap();
            sys.write(holder, x(reg), Value::from(u64::from(reg)));
        }
        sys.run_to_quiescence();
        assert!(sys.check().is_consistent());
        (sys.timestamp_counters(), sys.metrics().metadata_bytes)
    };
    assert_eq!(run(LoopConfig::EXHAUSTIVE), run(LoopConfig::bounded(3)));
}

#[test]
fn hypercube_and_torus_protocol_runs() {
    for g in [topology::hypercube(3), topology::torus(3, 3)] {
        let mut sys = System::builder(g.clone())
            .delay(DelayModel::Uniform { min: 1, max: 15 })
            .seed(8)
            .build();
        for i in g.replicas() {
            let reg = g.placement().registers_of(i).first().unwrap();
            sys.write(i, reg, Value::from(i.raw() as u64));
            sys.step();
        }
        sys.run_to_quiescence();
        assert!(sys.is_settled());
        assert!(sys.check().is_consistent());
    }
}

#[test]
fn communities_topology_tracks_bridges() {
    // Bridge edges close a global cycle through all communities: far
    // edges appear in timestamp graphs; the protocol stays consistent.
    let g = topology::communities(3, 3);
    let mut sys = System::builder(g.clone()).seed(2).build();
    let counters = sys.timestamp_counters();
    // Dense intra-community sharing: every replica tracks more than its
    // incident edges.
    for (i, &c) in counters.iter().enumerate() {
        let incident = 2 * g.degree(r(i as u32));
        assert!(c >= incident, "replica {i}: {c} < {incident}");
    }
    for i in g.replicas() {
        let reg = g.placement().registers_of(i).first().unwrap();
        sys.write(i, reg, Value::from(1u64));
    }
    sys.run_to_quiescence();
    assert!(sys.check().is_consistent());
}

#[test]
fn metrics_payload_accounting() {
    let mut sys = System::builder(topology::path(2)).seed(0).build();
    sys.write(r(0), x(0), Value::from("hello world")); // 11 bytes
    sys.run_to_quiescence();
    assert_eq!(sys.metrics().payload_bytes, 11);
    assert_eq!(sys.metrics().data_messages, 1);
    assert!(sys.metrics().metadata_bytes > 0);
}
