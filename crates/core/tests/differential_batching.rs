//! Differential testing of the batched update pipeline: a system running
//! a coalescing [`BatchPolicy`] must be observationally equivalent to the
//! per-update (singleton-batch) oracle.
//!
//! The oracle runs [`BatchPolicy::unbatched`] — every update ships
//! immediately as a singleton batch, byte-identical to the pre-batching
//! wire. The subject runs the *same seeded workload* under a randomly
//! drawn policy (counts down to 1, byte caps, flush windows), across
//! ring/tree/clique topologies, all three trackers, all three wire
//! modes, both pending schedulers, and generated fault schedules with
//! the session layer healing them. Equivalence means:
//!
//! * the same multiset of issue/apply events;
//! * the same final store at every replica and register;
//! * the same per-replica timestamp shapes;
//! * the same (empty) causal-consistency violation list;
//! * zero stuck pending updates on both sides.
//!
//! A non-vacuity check asserts the receiver-side once-per-batch fast
//! path actually engages on a batched run — otherwise the differential
//! would only ever exercise the per-message fallback.

use prcc_checker::Event;
use prcc_core::{BatchPolicy, PendingMode, System, TrackerKind, Value, WireMode};
use prcc_net::{DelayModel, FaultPlan, FaultSchedule, SessionConfig};
use prcc_sharegraph::{topology, RegisterId, ReplicaId, ShareGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_topology(sel: usize, n: usize) -> ShareGraph {
    match sel % 3 {
        0 => topology::ring(n),
        1 => topology::binary_tree(n),
        _ => topology::clique_full(n, 2),
    }
}

fn make_schedule(
    n: usize,
    drop_prob: f64,
    crashes: usize,
    partition: bool,
    seed: u64,
) -> FaultSchedule {
    let mut s = FaultSchedule::from_plan(FaultPlan {
        drop_prob,
        duplicate_prob: 0.15,
        ..Default::default()
    });
    if partition && n >= 2 {
        let a = ReplicaId::new((seed % n as u64) as u32);
        let b = ReplicaId::new(((seed / 3 + 1) % n as u64) as u32);
        if a != b {
            let from = 100 + (seed % 80);
            s = s.partition([a], [b], from, from + 350);
        }
    }
    let mut used = Vec::new();
    for c in 0..crashes {
        let r = ReplicaId::new(((seed / (7 + c as u64)) % n as u64) as u32);
        if used.contains(&r) {
            continue;
        }
        used.push(r);
        let at = 150 + (seed % 120) + 400 * c as u64;
        let restart = at + 250 + (seed % 200);
        s = s.crash(r, at, restart);
    }
    s
}

/// One deterministic run of the shared workload under `policy`.
/// Single writer per register (its first holder), writes at a crashed
/// writer deferred FIFO — the same discipline as the fault-stack
/// differential, so the final state is schedule-independent.
#[allow(clippy::too_many_arguments)]
fn run_one(
    g: &ShareGraph,
    tracker: TrackerKind,
    mode: PendingMode,
    wire: WireMode,
    policy: BatchPolicy,
    schedule: Option<&FaultSchedule>,
    session: bool,
    seed: u64,
) -> System {
    let mut b = System::builder(g.clone())
        .tracker(tracker)
        .pending_mode(mode)
        .wire_mode(wire)
        .batch_policy(policy)
        .delay(DelayModel::Uniform { min: 1, max: 200 })
        .seed(seed);
    if let Some(s) = schedule {
        b = b.fault_schedule(s.clone());
    }
    if session {
        b = b.session(SessionConfig::default());
    }
    let mut sys = b.build();

    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C);
    let n = g.num_replicas();
    let nregs = g.placement().num_registers();
    let writes = 4 * n as u64;
    let mut deferred: Vec<Vec<(RegisterId, u64)>> = vec![Vec::new(); n];
    for w in 0..writes {
        let x = RegisterId::new(rng.gen_range(0..nregs as u32));
        let writer = g.placement().holders(x)[0];
        if sys.is_crashed(writer) {
            deferred[writer.index()].push((x, w));
        } else {
            for (dx, dv) in deferred[writer.index()].split_off(0) {
                sys.write(writer, dx, Value::from(dv));
            }
            sys.write(writer, x, Value::from(w));
        }
        for _ in 0..rng.gen_range(0usize..4) {
            sys.step();
        }
    }
    sys.run_to_quiescence();
    for (i, q) in deferred.iter_mut().enumerate() {
        let r = ReplicaId::new(i as u32);
        for (dx, dv) in q.split_off(0) {
            sys.write(r, dx, Value::from(dv));
        }
    }
    sys.run_to_quiescence();
    sys
}

fn event_key(e: &Event) -> (u8, u32, u64, u32) {
    match *e {
        Event::Issue { update, register } => (0, update.issuer.raw(), update.seq, register.raw()),
        Event::Apply { update, at } => (1, update.issuer.raw(), update.seq, at.raw()),
    }
}

fn sorted_events(sys: &System) -> Vec<(u8, u32, u64, u32)> {
    let mut keys: Vec<_> = sys.trace().events().iter().map(event_key).collect();
    keys.sort_unstable();
    keys
}

/// The headline property: drawn policy ≡ singleton oracle.
#[allow(clippy::too_many_arguments)]
fn assert_equivalent(
    g: &ShareGraph,
    tracker: TrackerKind,
    mode: PendingMode,
    wire: WireMode,
    policy: BatchPolicy,
    schedule: Option<&FaultSchedule>,
    session: bool,
    seed: u64,
) {
    let oracle = run_one(
        g,
        tracker,
        mode,
        wire,
        BatchPolicy::unbatched(),
        schedule,
        session,
        seed,
    );
    let subject = run_one(g, tracker, mode, wire, policy, schedule, session, seed);

    prop_assert!(subject.is_settled(), "batched run failed to quiesce");
    prop_assert_eq!(
        sorted_events(&oracle),
        sorted_events(&subject),
        "event multisets diverge under {:?}",
        policy
    );
    for i in g.replicas() {
        for x in g.placement().registers_of(i).iter() {
            prop_assert_eq!(
                oracle.read(i, x),
                subject.read(i, x),
                "store mismatch at {:?} register {:?} under {:?}",
                i,
                x,
                policy
            );
        }
    }
    // Timestamp shapes are structural (graph-determined) for the edge and
    // vector trackers, so they must match exactly. FullDeps' counter is
    // the size of the accumulated causal-past set, which legitimately
    // varies with delivery *timing* (coalescing shifts when an issuer has
    // applied what), so it is excluded from the observable set.
    if !matches!(tracker, TrackerKind::FullDeps) {
        prop_assert_eq!(oracle.timestamp_counters(), subject.timestamp_counters());
    }
    let (or, sr) = (oracle.check(), subject.check());
    prop_assert!(or.is_consistent(), "oracle itself inconsistent");
    prop_assert_eq!(or.violations, sr.violations);
    prop_assert_eq!(oracle.stuck_pending(), 0);
    prop_assert_eq!(subject.stuck_pending(), 0);
}

fn draw_policy(count_i: usize, bytes_i: usize, flush_i: usize) -> BatchPolicy {
    BatchPolicy {
        batch_count: [1, 2, 4, 8, 16][count_i],
        batch_bytes: [64, 512, 1 << 20][bytes_i],
        flush_after: [0, 1, 5][flush_i],
    }
}

proptest! {
    /// Fault-free, sessionless: batching alone must not change any
    /// observable, for every tracker × wire mode × pending scheduler.
    #[test]
    fn batched_matches_unbatched_fault_free(
        topo in 0usize..3,
        n in 3usize..7,
        tracker_sel in 0usize..3,
        pm in 0usize..2,
        wire in 0usize..4,
        count_i in 0usize..5,
        bytes_i in 0usize..3,
        flush_i in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let g = build_topology(topo, n);
        let tracker = match tracker_sel {
            0 => TrackerKind::EdgeIndexed(prcc_sharegraph::LoopConfig::EXHAUSTIVE),
            1 => TrackerKind::VectorClock,
            _ => TrackerKind::FullDeps,
        };
        // Baselines ship raw metadata regardless of wire mode; only the
        // edge-indexed tracker exercises projection/compression.
        let wire = match tracker {
            TrackerKind::EdgeIndexed(_) => [
                WireMode::Raw,
                WireMode::Projected,
                WireMode::Compressed,
                WireMode::Adaptive,
            ][wire],
            _ => WireMode::Raw,
        };
        let mode = if pm == 0 { PendingMode::Scan } else { PendingMode::Wakeup };
        let policy = draw_policy(count_i, bytes_i, flush_i);
        assert_equivalent(&g, tracker, mode, wire, policy, None, false, seed);
    }

    /// Under fault schedules healed by the session layer: batching and
    /// the reliability machinery (retransmission of whole batches,
    /// crash-forced eager flushing, catch-up) must still converge to the
    /// singleton oracle's observables.
    #[test]
    fn batched_matches_unbatched_under_faults(
        topo in 0usize..3,
        n in 3usize..7,
        wire in 0usize..3,
        count_i in 0usize..5,
        bytes_i in 0usize..3,
        flush_i in 0usize..3,
        drop_i in 0usize..3,
        crashes in 0usize..3,
        partition in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let g = build_topology(topo, n);
        let drop_prob = [0.0, 0.2, 0.4][drop_i];
        let s = make_schedule(n, drop_prob, crashes, partition == 1, seed);
        let wire = [WireMode::Raw, WireMode::Projected, WireMode::Compressed][wire];
        let tracker = TrackerKind::EdgeIndexed(prcc_sharegraph::LoopConfig::EXHAUSTIVE);
        let policy = draw_policy(count_i, bytes_i, flush_i);
        assert_equivalent(&g, tracker, PendingMode::default(), wire, policy, Some(&s), true, seed);
    }
}

/// Non-vacuity: a bursty single-writer workload on a coalescing policy
/// must actually drive the receiver's once-per-batch fast path — the
/// differential is meaningless if every batch falls back to the
/// per-message loop.
#[test]
fn batch_fast_path_engages() {
    let g = topology::ring(4);
    let mut sys = System::builder(g)
        .batch_policy(BatchPolicy {
            batch_count: 8,
            batch_bytes: 1 << 20,
            flush_after: 5,
        })
        .delay(DelayModel::Fixed(1))
        .seed(3)
        .build();
    for round in 0..32u64 {
        sys.write(ReplicaId::new(0), RegisterId::new(0), Value::from(round));
    }
    sys.run_to_quiescence();
    assert!(sys.is_settled());
    assert!(sys.check().is_consistent());
    let fast: u64 = (0..4)
        .map(|i| sys.replica(ReplicaId::new(i)).batch_fast_applies())
        .sum();
    assert!(
        fast > 0,
        "no batch took the fast path — the batched differential only tests the fallback"
    );
    assert_eq!(
        sys.read(ReplicaId::new(1), RegisterId::new(0)),
        Some(&Value::from(31u64))
    );
}

/// Crash schedules force eager (singleton) flushing, so nothing queued
/// in a volatile pending batch can be lost to a crash: the batched
/// subject equals the oracle even when the crash lands mid-workload.
#[test]
fn crash_forces_eager_flush_and_stays_equivalent() {
    let g = topology::ring(5);
    for seed in 0..8u64 {
        let s = FaultSchedule::default().crash(ReplicaId::new(2), 120, 600);
        let tracker = TrackerKind::EdgeIndexed(prcc_sharegraph::LoopConfig::EXHAUSTIVE);
        let policy = BatchPolicy {
            batch_count: 16,
            batch_bytes: 1 << 20,
            flush_after: 3,
        };
        let oracle = run_one(
            &g,
            tracker,
            PendingMode::default(),
            WireMode::default(),
            BatchPolicy::unbatched(),
            Some(&s),
            true,
            seed,
        );
        let subject = run_one(
            &g,
            tracker,
            PendingMode::default(),
            WireMode::default(),
            policy,
            Some(&s),
            true,
            seed,
        );
        assert!(subject.is_settled(), "seed {seed}");
        assert_eq!(
            sorted_events(&oracle),
            sorted_events(&subject),
            "seed {seed}"
        );
        assert_eq!(subject.stuck_pending(), 0, "seed {seed}");
        assert!(subject.check().is_consistent(), "seed {seed}");
    }
}
