//! Differential testing of the fault-tolerance stack: a faulty network
//! healed by the session layer must be observationally equivalent to a
//! fault-free run.
//!
//! The oracle is the fault-free execution (no drops, no crashes, no
//! session layer). The subject runs the *same seeded workload* under a
//! generated [`FaultSchedule`] — probabilistic drops/duplications,
//! scripted healing partitions, and up to two crash/restart events —
//! with the session layer (retransmission + WAL recovery + catch-up)
//! switched on. Equivalence means:
//!
//! * the same set of issue/apply events (order may differ — faults
//!   reshuffle timing — so sets, not sequences, are compared);
//! * the same final store at every replica and register;
//! * the same (empty) causal-consistency violation list;
//! * zero stuck pending updates on both sides.
//!
//! Workloads are single-writer-per-register (the register's first
//! holder writes it) so the final store is schedule-independent, and
//! writes at a crashed replica are deferred until it restarts — the
//! per-issuer write order is preserved, which is all causal convergence
//! needs.
//!
//! Negative controls check the session layer is load-bearing: the same
//! schedules *without* it demonstrably lose updates or liveness.

use prcc_checker::Event;
use prcc_core::{PendingMode, System, TrackerKind, Value, WireMode};
use prcc_net::{DelayModel, FaultPlan, FaultSchedule, SessionConfig};
use prcc_sharegraph::{topology, RegisterId, ReplicaId, ShareGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_topology(sel: usize, n: usize) -> ShareGraph {
    match sel % 3 {
        0 => topology::ring(n),
        1 => topology::binary_tree(n),
        _ => topology::clique_full(n, 2),
    }
}

/// Derives a healing fault schedule from the knobs. Every injected fault
/// heals: outages end, crashed replicas restart, and probabilistic drops
/// are compensated by retransmission.
fn make_schedule(
    n: usize,
    drop_prob: f64,
    duplicate_prob: f64,
    crashes: usize,
    partition: bool,
    seed: u64,
) -> FaultSchedule {
    let mut s = FaultSchedule::from_plan(FaultPlan {
        drop_prob,
        duplicate_prob,
        ..Default::default()
    });
    if partition && n >= 2 {
        let a = ReplicaId::new((seed % n as u64) as u32);
        let b = ReplicaId::new(((seed / 3 + 1) % n as u64) as u32);
        if a != b {
            let from = 100 + (seed % 80);
            s = s.partition([a], [b], from, from + 350);
        }
    }
    let mut used = Vec::new();
    for c in 0..crashes {
        let r = ReplicaId::new(((seed / (7 + c as u64)) % n as u64) as u32);
        if used.contains(&r) {
            continue;
        }
        used.push(r);
        let at = 150 + (seed % 120) + 400 * c as u64;
        let restart = at + 250 + (seed % 200);
        s = s.crash(r, at, restart);
    }
    s
}

/// One deterministic run of the shared workload. `schedule`/`session`
/// select the faulty subject; `None`/`false` the fault-free oracle.
///
/// Single writer per register (its first holder); writes landing on a
/// crashed writer are deferred FIFO until it is back up, so every
/// issuer's write sequence is identical across the two runs.
fn run_one(
    g: &ShareGraph,
    tracker: TrackerKind,
    mode: PendingMode,
    wire: WireMode,
    schedule: Option<&FaultSchedule>,
    session: bool,
    seed: u64,
) -> System {
    let mut b = System::builder(g.clone())
        .tracker(tracker)
        .pending_mode(mode)
        .wire_mode(wire)
        .delay(DelayModel::Uniform { min: 1, max: 200 })
        .seed(seed);
    if let Some(s) = schedule {
        b = b.fault_schedule(s.clone());
    }
    if session {
        b = b.session(SessionConfig::default());
    }
    let mut sys = b.build();

    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17);
    let n = g.num_replicas();
    let nregs = g.placement().num_registers();
    let writes = 4 * n as u64;
    let mut deferred: Vec<Vec<(RegisterId, u64)>> = vec![Vec::new(); n];
    for w in 0..writes {
        let x = RegisterId::new(rng.gen_range(0..nregs as u32));
        let writer = g.placement().holders(x)[0];
        if sys.is_crashed(writer) {
            deferred[writer.index()].push((x, w));
        } else {
            for (dx, dv) in deferred[writer.index()].split_off(0) {
                sys.write(writer, dx, Value::from(dv));
            }
            sys.write(writer, x, Value::from(w));
        }
        for _ in 0..rng.gen_range(0usize..4) {
            sys.step();
        }
    }
    // Play out the rest of the schedule (all crashes restart), then issue
    // any writes still parked behind a crash window.
    sys.run_to_quiescence();
    for (i, q) in deferred.iter_mut().enumerate() {
        let r = ReplicaId::new(i as u32);
        for (dx, dv) in q.split_off(0) {
            sys.write(r, dx, Value::from(dv));
        }
    }
    sys.run_to_quiescence();
    sys
}

/// Order-insensitive key for one trace event.
fn event_key(e: &Event) -> (u8, u32, u64, u32) {
    match *e {
        Event::Issue { update, register } => (0, update.issuer.raw(), update.seq, register.raw()),
        Event::Apply { update, at } => (1, update.issuer.raw(), update.seq, at.raw()),
    }
}

fn sorted_events(sys: &System) -> Vec<(u8, u32, u64, u32)> {
    let mut keys: Vec<_> = sys.trace().events().iter().map(event_key).collect();
    keys.sort_unstable();
    keys
}

/// The headline property: faulty + session ≡ fault-free.
fn assert_heals(
    g: &ShareGraph,
    tracker: TrackerKind,
    mode: PendingMode,
    wire: WireMode,
    schedule: &FaultSchedule,
    seed: u64,
) {
    let oracle = run_one(g, tracker, mode, wire, None, false, seed);
    let subject = run_one(g, tracker, mode, wire, Some(schedule), true, seed);

    prop_assert!(subject.is_settled(), "faulty run failed to quiesce");
    prop_assert_eq!(
        sorted_events(&oracle),
        sorted_events(&subject),
        "event sets diverge under {:?}",
        schedule
    );
    for i in g.replicas() {
        for x in g.placement().registers_of(i).iter() {
            prop_assert_eq!(
                oracle.read(i, x),
                subject.read(i, x),
                "store mismatch at {:?} register {:?}",
                i,
                x
            );
        }
    }
    let (or, sr) = (oracle.check(), subject.check());
    prop_assert!(or.is_consistent(), "oracle itself inconsistent");
    prop_assert_eq!(or.violations, sr.violations);
    prop_assert_eq!(oracle.stuck_pending(), 0);
    prop_assert_eq!(subject.stuck_pending(), 0);
}

proptest! {
    /// Edge-indexed tracker, both pending schedulers, under generated
    /// drop/dup/partition/crash schedules.
    #[test]
    fn faulty_session_matches_fault_free_edge_indexed(
        topo in 0usize..3,
        n in 3usize..7,
        pm in 0usize..2,
        drop_i in 0usize..4,
        crashes in 0usize..3,
        partition in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let g = build_topology(topo, n);
        let drop_prob = [0.0, 0.15, 0.3, 0.5][drop_i];
        let s = make_schedule(n, drop_prob, 0.2, crashes, partition == 1, seed);
        let mode = if pm == 0 { PendingMode::Scan } else { PendingMode::Wakeup };
        let tracker = TrackerKind::EdgeIndexed(prcc_sharegraph::LoopConfig::EXHAUSTIVE);
        assert_heals(&g, tracker, mode, WireMode::default(), &s, seed);
    }

    /// The baselines (vector clocks, full dependency lists) heal too.
    #[test]
    fn faulty_session_matches_fault_free_baselines(
        topo in 0usize..3,
        n in 3usize..6,
        vc in 0usize..2,
        drop_i in 0usize..3,
        crashes in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let g = build_topology(topo, n);
        let drop_prob = [0.0, 0.2, 0.4][drop_i];
        let s = make_schedule(n, drop_prob, 0.1, crashes, true, seed);
        let tracker = if vc == 0 { TrackerKind::VectorClock } else { TrackerKind::FullDeps };
        assert_heals(&g, tracker, PendingMode::default(), WireMode::default(), &s, seed);
    }

    /// The wire codec's FIFO delta framing must survive retransmission
    /// and crash/catch-up: all four wire modes (adaptive included) heal
    /// to the fault-free observables.
    #[test]
    fn faulty_session_matches_fault_free_wire_modes(
        topo in 0usize..3,
        n in 3usize..7,
        wire in 0usize..4,
        drop_i in 0usize..3,
        crashes in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let g = build_topology(topo, n);
        let drop_prob = [0.0, 0.2, 0.4][drop_i];
        let s = make_schedule(n, drop_prob, 0.2, crashes, true, seed);
        let wire = [
            WireMode::Raw,
            WireMode::Projected,
            WireMode::Compressed,
            WireMode::Adaptive,
        ][wire];
        let tracker = TrackerKind::EdgeIndexed(prcc_sharegraph::LoopConfig::EXHAUSTIVE);
        assert_heals(&g, tracker, PendingMode::default(), wire, &s, seed);
    }
}

/// Negative control: the same drop schedule *without* the session layer
/// loses messages for good — across seeds, some run must end with stuck
/// pending updates or missing applies. Otherwise the differential above
/// is vacuous.
#[test]
fn drops_without_session_lose_liveness() {
    let g = topology::ring(5);
    let mut damaged = 0;
    for seed in 0..12u64 {
        let s = FaultSchedule::from_plan(FaultPlan::dropping(0.4));
        let healthy = run_one(
            &g,
            TrackerKind::EdgeIndexed(prcc_sharegraph::LoopConfig::EXHAUSTIVE),
            PendingMode::default(),
            WireMode::default(),
            None,
            false,
            seed,
        );
        let faulty = run_one(
            &g,
            TrackerKind::EdgeIndexed(prcc_sharegraph::LoopConfig::EXHAUSTIVE),
            PendingMode::default(),
            WireMode::default(),
            Some(&s),
            false,
            seed,
        );
        if faulty.stuck_pending() > 0
            || sorted_events(&faulty).len() < sorted_events(&healthy).len()
        {
            damaged += 1;
        }
    }
    assert!(
        damaged > 0,
        "40% drop rate without a session layer never lost anything — negative control is vacuous"
    );
}

/// Negative control for crashes: a crash window without retransmission
/// permanently loses the in-flight updates addressed to the crashed
/// replica.
#[test]
fn crash_without_session_loses_updates() {
    let g = topology::ring(5);
    let mut damaged = 0;
    for seed in 0..12u64 {
        let s = FaultSchedule::default().crash(ReplicaId::new(2), 120, 600);
        let healthy = run_one(
            &g,
            TrackerKind::EdgeIndexed(prcc_sharegraph::LoopConfig::EXHAUSTIVE),
            PendingMode::default(),
            WireMode::default(),
            None,
            false,
            seed,
        );
        let faulty = run_one(
            &g,
            TrackerKind::EdgeIndexed(prcc_sharegraph::LoopConfig::EXHAUSTIVE),
            PendingMode::default(),
            WireMode::default(),
            Some(&s),
            false,
            seed,
        );
        if faulty.lost_to_crash() > 0
            && (faulty.stuck_pending() > 0
                || sorted_events(&faulty).len() < sorted_events(&healthy).len())
        {
            damaged += 1;
        }
    }
    assert!(
        damaged > 0,
        "crash without session never lost an update — negative control is vacuous"
    );
}

/// Non-vacuity of the positive property: on a scripted storm the session
/// machinery must actually engage (retransmissions, duplicate
/// suppression, catch-up), not merely be switched on.
#[test]
fn session_machinery_engages_under_storm() {
    let g = topology::ring(5);
    let s = FaultSchedule::from_plan(FaultPlan {
        drop_prob: 0.4,
        duplicate_prob: 0.3,
        ..Default::default()
    })
    .partition([ReplicaId::new(0)], [ReplicaId::new(2)], 100, 500)
    .crash(ReplicaId::new(3), 150, 700);
    let tracker = TrackerKind::EdgeIndexed(prcc_sharegraph::LoopConfig::EXHAUSTIVE);
    let sys = run_one(
        &g,
        tracker,
        PendingMode::default(),
        WireMode::default(),
        Some(&s),
        true,
        7,
    );
    assert!(sys.is_settled());
    assert!(sys.check().is_consistent());
    assert_eq!(sys.stuck_pending(), 0);
    let stats = sys.session_stats().expect("session enabled");
    assert!(stats.retransmits > 0, "storm caused no retransmissions");
    assert!(stats.delivered > 0);
    assert!(stats.catch_up_sent > 0, "restart sent no catch-up frames");
    assert!(
        !sys.catch_up_stats().is_empty(),
        "no catch-up latency recorded"
    );
}
