//! Robustness under injected faults.
//!
//! The paper assumes reliable, exactly-once channels. These tests show
//! what each half of that assumption buys:
//!
//! * duplication is harmless — predicate `J` admits every update exactly
//!   once (the counter must be *exactly* one ahead), so at-least-once
//!   channels suffice in practice;
//! * genuine loss breaks liveness (and cascades: updates causally after a
//!   lost one can never apply) — and the checker reports it.

use prcc_core::{System, Value};
use prcc_net::{DelayModel, FaultPlan};
use prcc_sharegraph::{topology, RegisterId, ReplicaId};

fn r(i: u32) -> ReplicaId {
    ReplicaId::new(i)
}
fn x(i: u32) -> RegisterId {
    RegisterId::new(i)
}

#[test]
fn duplicates_are_suppressed_by_the_predicate() {
    for seed in 0..10 {
        let mut sys = System::builder(topology::ring(4))
            .faults(FaultPlan::duplicating(0.5))
            .delay(DelayModel::Uniform { min: 1, max: 20 })
            .seed(seed)
            .build();
        for round in 0..5u64 {
            for i in 0..4u32 {
                sys.write(r(i), x(i), Value::from(round));
            }
            sys.run_to_quiescence();
        }
        let stats = sys.net_stats();
        assert!(stats.duplicated > 0, "seed {seed}: no duplicates injected");
        let rep = sys.check();
        assert!(
            rep.is_consistent(),
            "seed {seed}: duplicates broke consistency: {:?}",
            rep.violations
        );
        // Exactly-once applied: each write has exactly 1 recipient in a
        // ring, so applies == writes despite duplicate deliveries.
        assert_eq!(sys.metrics().applies, 20, "seed {seed}");
        // Duplicate copies linger in pending buffers (never admissible) —
        // that's the expected residue, not a protocol defect.
        assert_eq!(sys.stuck_pending(), stats.duplicated, "seed {seed}");
    }
}

#[test]
fn dead_link_breaks_liveness_and_checker_reports_it() {
    let mut sys = System::builder(topology::path(3))
        .faults(FaultPlan::none().kill_link(r(0), r(1)))
        .delay(DelayModel::Fixed(1))
        .seed(0)
        .build();
    sys.write(r(0), x(0), Value::from(1u64));
    sys.write(r(1), x(1), Value::from(2u64)); // unaffected link r1 -> r2
    sys.run_to_quiescence();
    let rep = sys.check();
    assert!(!rep.is_consistent());
    assert_eq!(rep.liveness_violations().count(), 1);
    assert_eq!(rep.safety_violations().count(), 0);
    // The unaffected update still made it.
    assert_eq!(sys.read(r(2), x(1)), Some(&Value::from(2u64)));
    assert_eq!(sys.read(r(1), x(0)), None);
}

#[test]
fn loss_cascades_through_fifo_dependencies() {
    // Drop-then-deliver on the same link: the later update from the same
    // issuer can never be applied (its counter is 2 ahead), so one lost
    // message blocks the whole channel — liveness violations for both.
    let mut sys = System::builder(topology::path(2))
        .delay(DelayModel::Fixed(1))
        .seed(0)
        .build();
    // Inject the drop by killing the link for the first write only.
    let mut sys2 = System::builder(topology::path(2))
        .faults(FaultPlan::none().kill_link(r(0), r(1)))
        .delay(DelayModel::Fixed(1))
        .seed(0)
        .build();
    sys2.write(r(0), x(0), Value::from(1u64));
    // "Repair" is not possible on a SystemBuilder fault plan; emulate the
    // post-repair second write on the healthy system for contrast.
    sys2.write(r(0), x(0), Value::from(2u64));
    sys2.run_to_quiescence();
    let rep2 = sys2.check();
    assert_eq!(rep2.liveness_violations().count(), 2, "both updates lost");

    sys.write(r(0), x(0), Value::from(1u64));
    sys.write(r(0), x(0), Value::from(2u64));
    sys.run_to_quiescence();
    assert!(sys.check().is_consistent());
}

#[test]
fn random_drops_detected_across_seeds() {
    let mut violations_seen = false;
    for seed in 0..10 {
        let mut sys = System::builder(topology::ring(5))
            .faults(FaultPlan::dropping(0.3))
            .delay(DelayModel::Fixed(2))
            .seed(seed)
            .build();
        for i in 0..5u32 {
            sys.write(r(i), x(i), Value::from(7u64));
        }
        sys.run_to_quiescence();
        let stats = sys.net_stats();
        let rep = sys.check();
        if stats.dropped > 0 {
            assert!(
                rep.liveness_violations().count() > 0,
                "seed {seed}: {} drops but no liveness violation",
                stats.dropped
            );
            violations_seen = true;
        } else {
            assert!(rep.is_consistent(), "seed {seed}");
        }
    }
    assert!(violations_seen, "30% drop rate never dropped anything");
}
