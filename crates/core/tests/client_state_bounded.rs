//! The client's per-session state is O(1) in the number of ops issued:
//! `μ_c` is a fixed vector indexed by the union of the augmented
//! timestamp graphs of the client's replicas (Appendix E.5), so ten
//! thousand ops grow counter *values*, never the counter *count* — and
//! that truncation to a fixed edge set never costs read-your-writes,
//! because the served-request predicate gates on exactly those edges.

use prcc_core::client_server::ClientServerSystem;
use prcc_core::Value;
use prcc_net::DelayModel;
use prcc_sharegraph::{topology, AugmentedShareGraph, ClientAssignment, ClientId, ReplicaId};
use prcc_timestamp::ClientTsRegistry;

#[test]
fn client_state_stays_bounded_over_ten_thousand_ops() {
    let g = topology::clique_full(4, 2);
    let mut clients = ClientAssignment::new(g.num_replicas());
    let c = ClientId::new(0);
    let (r0, r1) = (ReplicaId::new(0), ReplicaId::new(1));
    clients.assign(c, [r0, r1]);
    let aug = AugmentedShareGraph::new(g.clone(), clients);
    // An independent registry over the same augmented graph yields the
    // canonical edge union the client vector must stay pinned to.
    let edge_count = ClientTsRegistry::new(&aug).client_edges(c).len();
    assert!(edge_count > 0);

    let mut sys = ClientServerSystem::new(aug, DelayModel::Fixed(1), 11);
    // A register both of the client's replicas hold, so reads can hop
    // replicas and exercise the cross-replica read-your-writes gate.
    let x = g
        .placement()
        .shared(r0, r1)
        .iter()
        .next()
        .expect("clique replicas share a register");

    let ops = 10_000usize;
    let mut pending_reads = Vec::new();
    for k in 0..ops / 2 {
        let v = Value::from(k as u64);
        sys.write(c, r0, x, v.clone());
        // Alternate the serving replica for the read: same-replica RYW
        // half the time, cross-replica (client-timestamp-gated) the rest.
        let serve = if k % 2 == 0 { r0 } else { r1 };
        let id = sys.read(c, serve, x);
        sys.run_to_quiescence();
        pending_reads.push((id, v));

        // The invariant under test: issuing ops never grows the vector.
        let mu = sys.client_timestamp(c);
        assert_eq!(mu.num_counters(), edge_count, "μ_c grew at op {k}");
        assert_eq!(mu.wire_size_bytes(), edge_count * 8);
    }

    // Read-your-writes held on every op: each read saw exactly the write
    // issued just before it (this client is the only writer of x).
    for (id, expected) in pending_reads {
        assert_eq!(
            sys.read_result(id),
            Some(&Some(expected)),
            "a read missed the client's own preceding write"
        );
    }
    assert!(sys.check().is_consistent());
    assert!(
        sys.check_sessions().is_empty(),
        "session guarantees violated: {:?}",
        sys.check_sessions()
    );
    assert_eq!(sys.blocked_requests(), 0);
}
