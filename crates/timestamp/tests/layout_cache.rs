//! Layout-cache invariance: the `PairLayout`s cached (and structurally
//! deduplicated) at `TsRegistry` construction must be indistinguishable
//! from layouts freshly re-derived from the share graph — identical
//! explicit/derived partitions, identical projections, and byte-identical
//! frame sequences under real `advance` workloads.

use prcc_sharegraph::{topology, LoopConfig, RegisterId, ReplicaId, ShareGraph, TimestampGraphs};
use prcc_timestamp::{TsRegistry, WireDecoder, WireEncoder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_topology(sel: usize, n: usize) -> ShareGraph {
    match sel % 3 {
        0 => topology::ring(n),
        1 => topology::binary_tree(n),
        _ => topology::clique_full(n, 2),
    }
}

/// Checks every ordered pair of `g`: cached layout ≡ fresh derivation,
/// on structure and on the frames of a seeded write sequence.
fn assert_cache_invariant(g: &ShareGraph, seed: u64) {
    let reg = TsRegistry::new(g, TimestampGraphs::build(g, LoopConfig::EXHAUSTIVE));
    let mut rng = StdRng::seed_from_u64(seed);
    for sender in g.replicas() {
        // One advancing timestamp per sender, shared across receivers so
        // distinct pairs see the same counter history.
        let mut ts = reg.new_timestamp(sender);
        let regs: Vec<RegisterId> = g.placement().registers_of(sender).iter().collect();
        let mut frames = Vec::new();
        for _ in 0..4 {
            for _ in 0..rng.gen_range(1usize..5) {
                reg.advance(&mut ts, regs[rng.gen_range(0..regs.len())]);
            }
            frames.push(ts.values().to_vec());
        }
        for receiver in g.replicas() {
            if receiver == sender {
                continue;
            }
            let cached = reg.wire_layout(receiver, sender);
            let fresh = reg.derive_wire_layout(g, receiver, sender);

            // Identical partitions, element for element.
            assert_eq!(cached.sender_positions(), fresh.sender_positions());
            assert_eq!(cached.explicit_indices(), fresh.explicit_indices());
            assert_eq!(cached.derived_rows(), fresh.derived_rows());
            assert_eq!(*cached, fresh);

            // Byte-identical frame streams and identical decodes.
            let mut enc_c = WireEncoder::new(&cached);
            let mut enc_f = WireEncoder::new(&fresh);
            let mut dec = WireDecoder::new(&fresh);
            let (mut buf_c, mut buf_f) = (Vec::new(), Vec::new());
            for full in &frames {
                enc_c.encode(&cached, full, &mut buf_c);
                enc_f.encode(&fresh, full, &mut buf_f);
                assert_eq!(buf_c, buf_f, "frame bytes differ for {sender}->{receiver}");
                assert_eq!(
                    dec.decode(&fresh, &buf_c),
                    Ok(cached.project(full)),
                    "cached frame must decode to the fresh layout's projection"
                );
            }
        }
    }
}

proptest! {
    /// Ring / tree / clique, all sizes: the cache (with its structural
    /// Arc-dedup) never changes what goes on the wire.
    #[test]
    fn cached_layouts_match_fresh_derivations(
        topo in 0usize..3,
        n in 3usize..9,
        seed in 0u64..1_000_000,
    ) {
        assert_cache_invariant(&build_topology(topo, n), seed);
    }
}

#[test]
fn clique_layouts_share_one_allocation_per_sender() {
    // Full replication: for a fixed sender, every receiver's layout is
    // the same (same common slice, same derived rows over the sender's
    // own edges), and the dedup at construction must collapse them into
    // a single `Arc` — the property the encode-once fan-out's pointer
    // grouping relies on. Layouts of *different* senders differ (their
    // own edges sit at different slice positions) and must not merge.
    let g = topology::clique_full(6, 2);
    let reg = TsRegistry::new(&g, TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE));
    for s in g.replicas() {
        let first = reg.wire_layout(
            if s.index() == 0 {
                ReplicaId::new(1)
            } else {
                ReplicaId::new(0)
            },
            s,
        );
        for r in g.replicas() {
            if s == r {
                continue;
            }
            let l = reg.wire_layout(r, s);
            assert_eq!(*l, *first);
            assert!(
                std::sync::Arc::ptr_eq(&l, &first),
                "one sender's clique layouts must be deduplicated into one Arc"
            );
        }
    }
    let a = reg.wire_layout(ReplicaId::new(2), ReplicaId::new(0));
    let b = reg.wire_layout(ReplicaId::new(2), ReplicaId::new(1));
    assert_ne!(*a, *b, "different senders' layouts must stay distinct");
}
