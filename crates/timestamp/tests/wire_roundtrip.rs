//! Round-trip properties of the wire codec: for every layout and every
//! frame sequence, encode → decode is the identity on the projected
//! counters — including all-zeros frames, single-counter layouts,
//! decreasing sequences, and `u64::MAX`-magnitude deltas.

use prcc_sharegraph::RegSet;
use prcc_timestamp::wire::{decode_delta, encode_delta, read_varint, write_varint};
use prcc_timestamp::{PairLayout, WireDecoder, WireEncoder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Encodes each frame in order and checks the paired decoder returns the
/// projection of each.
fn assert_roundtrip(layout: &PairLayout, frames: &[Vec<u64>]) {
    let mut enc = WireEncoder::new(layout);
    let mut dec = WireDecoder::new(layout);
    let mut buf = Vec::new();
    for full in frames {
        let n = enc.encode(layout, full, &mut buf);
        assert_eq!(n, buf.len(), "encode must report the frame length");
        let got = dec.decode(layout, &buf).expect("well-formed frame");
        assert_eq!(&got, &layout.project(full), "frame {full:?}");
    }
}

/// A compressible layout plus value frames that respect its linear
/// relations: `rows` register sets over `m` registers become the sender's
/// own outgoing edges (slice indices `0..rows.len()`), followed by
/// `others` unconstrained entries. Frame values for own rows are sums of
/// seeded per-register counts, exactly how `advance` maintains them.
fn own_rows_case(
    m: usize,
    row_masks: &[u32],
    others: usize,
    num_frames: usize,
    value_seed: u64,
    big: bool,
) -> (PairLayout, Vec<Vec<u64>>) {
    let rows: Vec<RegSet> = row_masks
        .iter()
        .map(|&mask| {
            // Non-empty: always include register (mask % m).
            let mut s = RegSet::new();
            s.insert(prcc_sharegraph::RegisterId::new(mask % m as u32));
            for x in 0..m as u32 {
                if mask & (1 << x) != 0 {
                    s.insert(prcc_sharegraph::RegisterId::new(x));
                }
            }
            s
        })
        .collect();
    let own: Vec<(usize, RegSet)> = rows.iter().cloned().enumerate().collect();
    let len = rows.len() + others;
    let layout = PairLayout::build((0..len).collect(), &own);

    let mut rng = StdRng::seed_from_u64(value_seed);
    let mut frames = Vec::new();
    for _ in 0..num_frames {
        // Per-register write counts; own-row values are their sums over
        // the row's registers (u64::MAX/8 headroom keeps sums lossless).
        let counts: Vec<u64> = (0..m)
            .map(|_| {
                if big {
                    rng.gen_range(0..u64::MAX / 8)
                } else {
                    rng.gen_range(0u64..50)
                }
            })
            .collect();
        let mut frame: Vec<u64> = rows
            .iter()
            .map(|r| r.iter().map(|x| counts[x.index()]).sum())
            .collect();
        for _ in 0..others {
            frame.push(if big {
                rng.gen_range(0..u64::MAX)
            } else {
                rng.gen_range(0u64..50)
            });
        }
        frames.push(frame);
    }
    (layout, frames)
}

proptest! {
    /// Varints survive a round trip for any value.
    #[test]
    fn varint_roundtrip(v in 0u64..u64::MAX) {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(read_varint(&buf, &mut pos), Some(v));
        prop_assert_eq!(pos, buf.len());
    }

    /// Zig-zag deltas are lossless for any (prev, cur) pair — including
    /// decreases and wrap-around magnitudes.
    #[test]
    fn delta_roundtrip(prev in 0u64..u64::MAX, cur in 0u64..u64::MAX) {
        prop_assert_eq!(decode_delta(prev, encode_delta(prev, cur)), cur);
    }

    /// Identity (all-explicit) layouts: arbitrary frame sequences round-
    /// trip, regardless of counter magnitudes or ordering between frames.
    #[test]
    fn identity_layout_roundtrip(
        len in 1usize..12,
        num_frames in 1usize..8,
        seed in 0u64..1_000_000,
    ) {
        let layout = PairLayout::identity((0..len).collect());
        let mut rng = StdRng::seed_from_u64(seed);
        let frames: Vec<Vec<u64>> = (0..num_frames)
            .map(|_| (0..len).map(|_| rng.gen_range(0..u64::MAX)).collect())
            .collect();
        assert_roundtrip(&layout, &frames);
    }

    /// The chunked (8-wide fast path) frame encoder and decoder are
    /// byte-identical to the scalar reference on arbitrary layouts and
    /// frame sequences — small steady-state deltas, multi-byte spikes,
    /// and `u64::MAX` swings alike.
    #[test]
    fn chunked_frame_codec_matches_scalar(
        len in 1usize..40,
        num_frames in 1usize..6,
        seed in 0u64..1_000_000,
        spiky in 0usize..2,
    ) {
        let layout = PairLayout::identity((0..len).collect());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut prev = vec![0u64; len];
        for _ in 0..num_frames {
            let full: Vec<u64> = (0..len)
                .map(|_| {
                    if spiky == 1 && rng.gen_range(0u32..8) == 0 {
                        rng.gen_range(0..u64::MAX)
                    } else {
                        rng.gen_range(0u64..64)
                    }
                })
                .collect();
            let (mut fast, mut slow) = (Vec::new(), Vec::new());
            let (mut next_f, mut next_s) = (Vec::new(), Vec::new());
            let nf = layout.encode_frame(&prev, &full, &mut fast, &mut next_f);
            let ns = layout.encode_frame_scalar(&prev, &full, &mut slow, &mut next_s);
            prop_assert_eq!(nf, ns);
            prop_assert_eq!(&fast, &slow, "chunked encode changed the bytes");
            prop_assert_eq!(&next_f, &next_s);
            let (mut pos_f, mut pos_s) = (0usize, 0usize);
            let (mut dn_f, mut dn_s) = (Vec::new(), Vec::new());
            let df = layout.decode_frame(&prev, &fast, &mut pos_f, &mut dn_f);
            let ds = layout.decode_frame_scalar(&prev, &slow, &mut pos_s, &mut dn_s);
            prop_assert_eq!(df.as_ref().expect("decode"), &full);
            prop_assert_eq!(df, ds);
            prop_assert_eq!(pos_f, pos_s);
            prop_assert_eq!(&dn_f, &dn_s);
            prev = next_f;
        }
    }

    /// Chunked decode rejects exactly what scalar decode rejects on
    /// mutated frames, and both leave `pos`/state reusable.
    #[test]
    fn chunked_decode_rejects_like_scalar(
        len in 8usize..24,
        seed in 0u64..1_000_000,
        chop in 1usize..8,
    ) {
        let layout = PairLayout::identity((0..len).collect());
        let mut rng = StdRng::seed_from_u64(seed);
        let prev = vec![0u64; len];
        let full: Vec<u64> = (0..len).map(|_| rng.gen_range(0..u64::MAX)).collect();
        let (mut buf, mut next) = (Vec::new(), Vec::new());
        layout.encode_frame(&prev, &full, &mut buf, &mut next);
        let cut = buf.len().saturating_sub(chop);
        let truncated = &buf[..cut];
        let (mut pos_f, mut pos_s) = (0usize, 0usize);
        let (mut dn_f, mut dn_s) = (Vec::new(), Vec::new());
        let df = layout.decode_frame(&prev, truncated, &mut pos_f, &mut dn_f);
        let ds = layout.decode_frame_scalar(&prev, truncated, &mut pos_s, &mut dn_s);
        prop_assert_eq!(df.is_err(), ds.is_err());
    }

    /// Layouts with derived rows: random own-edge register sets (some
    /// linearly dependent, some not — the builder decides and verifies)
    /// with values that respect the sender-maintained linear relations.
    #[test]
    fn compressible_layout_roundtrip(
        m in 1usize..6,
        masks in proptest::collection::vec(0u32..64, 1..7),
        others in 0usize..4,
        num_frames in 1usize..6,
        value_seed in 0u64..1_000_000,
        big in 0usize..2,
    ) {
        let (layout, frames) =
            own_rows_case(m, &masks, others, num_frames, value_seed, big == 1);
        prop_assert_eq!(layout.num_explicit() + layout.num_derived(), layout.common_len());
        assert_roundtrip(&layout, &frames);
    }
}

#[test]
fn all_zeros_frame() {
    let layout = PairLayout::identity(vec![0, 1, 2, 3]);
    assert_roundtrip(&layout, &[vec![0, 0, 0, 0], vec![0, 0, 0, 0]]);
}

#[test]
fn single_counter_layout() {
    let layout = PairLayout::identity(vec![0]);
    assert_roundtrip(&layout, &[vec![0], vec![u64::MAX], vec![5], vec![5]]);
}

#[test]
fn u64_max_delta_both_directions() {
    // 0 → MAX is a +MAX delta; MAX → 0 is a −MAX delta. Zig-zag over the
    // wrapping difference must carry both exactly.
    let layout = PairLayout::identity(vec![0, 1]);
    assert_roundtrip(
        &layout,
        &[
            vec![0, u64::MAX],
            vec![u64::MAX, 0],
            vec![0, u64::MAX],
            vec![1, u64::MAX - 1],
        ],
    );
}

#[test]
fn duplicate_identical_frames_cost_one_byte_per_counter() {
    let layout = PairLayout::identity(vec![0, 1, 2]);
    let mut enc = WireEncoder::new(&layout);
    let mut buf = Vec::new();
    enc.encode(&layout, &[9_000_000, 42, 7], &mut buf);
    let n = enc.encode(&layout, &[9_000_000, 42, 7], &mut buf);
    assert_eq!(n, 3); // three zero deltas
}

#[test]
fn truncated_and_oversized_frames_are_rejected() {
    let layout = PairLayout::identity(vec![0, 1]);
    let mut enc = WireEncoder::new(&layout);
    let mut buf = Vec::new();
    enc.encode(&layout, &[300, 7], &mut buf);
    assert!(buf.len() >= 3);
    let mut dec = WireDecoder::new(&layout);
    assert!(dec.decode(&layout, &buf[..buf.len() - 1]).is_err());
    let mut extended = buf.clone();
    extended.push(0);
    assert!(dec.decode(&layout, &extended).is_err());
    // The intact frame still decodes (failed attempts must not corrupt
    // decoder state).
    assert_eq!(dec.decode(&layout, &buf), Ok(vec![300, 7]));
}
