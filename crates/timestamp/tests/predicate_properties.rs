//! Property tests for the timestamp operations: the predicate `J` must
//! admit exactly the causal delivery orders.
//!
//! Oracle: a brute-force scheduler replays a batch of updates in a random
//! order, delivering each when `J` allows; the resulting apply order at
//! every replica must linearize the (known) causal order of the batch,
//! and all updates must eventually apply.

use prcc_sharegraph::{topology, LoopConfig, RegisterId, ReplicaId, TimestampGraphs};
use prcc_timestamp::{EdgeTimestamp, TsRegistry};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One update in the generated batch.
#[derive(Debug, Clone)]
struct Upd {
    issuer: ReplicaId,
    register: RegisterId,
    stamp: EdgeTimestamp,
    /// Batch indices known to causally precede this update.
    preds: Vec<usize>,
}

/// Builds a causal chain batch on a ring: each replica applies the
/// previous update before issuing its own.
fn build_chain(reg: &TsRegistry, n: usize, rounds: usize) -> Vec<Upd> {
    let mut states: Vec<EdgeTimestamp> = (0..n)
        .map(|i| reg.new_timestamp(ReplicaId::new(i as u32)))
        .collect();
    let mut batch: Vec<Upd> = Vec::new();
    let mut prev: Option<usize> = None;
    for round in 0..rounds {
        for (i, state) in states.iter_mut().enumerate() {
            let issuer = ReplicaId::new(i as u32);
            // Apply the previous update locally first (if it involves us —
            // on a ring, consecutive issuers share a register).
            if let Some(p) = prev {
                let pu = batch[p].clone();
                if reg.ready(state, pu.issuer, &pu.stamp) {
                    reg.merge(state, pu.issuer, &pu.stamp);
                }
            }
            let register = RegisterId::new(((i + round) % n) as u32);
            // Only write registers the issuer holds: ring register k is
            // held by k and k+1; issuer i holds registers i and i-1.
            let register = if register.index() == i || (register.index() + 1) % n == i {
                register
            } else {
                RegisterId::new(i as u32)
            };
            reg.advance(state, register);
            let preds: Vec<usize> = prev.into_iter().collect();
            batch.push(Upd {
                issuer,
                register,
                stamp: state.clone(),
                preds,
            });
            prev = Some(batch.len() - 1);
        }
    }
    batch
}

proptest! {
    /// Random delivery orders through `J` always (a) deliver everything,
    /// (b) respect the chain's causal order at every receiver.
    #[test]
    fn predicate_admits_exactly_causal_orders(seed in 0u64..150, n in 3usize..6) {
        let g = topology::ring(n);
        let reg = TsRegistry::new(&g, TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE));
        let batch = build_chain(&reg, n, 2);

        // For each replica, the inbox = every update on a register it
        // stores, issued by someone else.
        for i in 0..n {
            let me = ReplicaId::new(i as u32);
            let mut inbox: Vec<usize> = (0..batch.len())
                .filter(|&k| {
                    batch[k].issuer != me
                        && g.placement().stores(me, batch[k].register)
                })
                .collect();
            let mut rng = StdRng::seed_from_u64(seed * 100 + i as u64);
            inbox.shuffle(&mut rng);

            let mut state = reg.new_timestamp(me);
            // The receiver also *issues* its own batch updates in order;
            // interleave them at their natural chain position.
            let mut own: Vec<usize> = (0..batch.len())
                .filter(|&k| batch[k].issuer == me)
                .collect();
            own.reverse(); // pop from the back in chain order

            let mut applied: Vec<usize> = Vec::new();
            let mut progress = true;
            while progress {
                progress = false;
                // Issue own next update when all its preds are in.
                if let Some(&k) = own.last() {
                    let ready = batch[k].preds.iter().all(|p| {
                        applied.contains(p) || batch[*p].issuer == me
                    });
                    if ready {
                        // Own issue: local state advances to the stamp.
                        state = batch[k].stamp.clone();
                        own.pop();
                        progress = true;
                        continue;
                    }
                }
                // Deliver any admissible inbox update.
                if let Some(pos) = inbox.iter().position(|&k| {
                    reg.ready(&state, batch[k].issuer, &batch[k].stamp)
                }) {
                    let k = inbox.remove(pos);
                    reg.merge(&mut state, batch[k].issuer, &batch[k].stamp);
                    applied.push(k);
                    progress = true;
                }
            }
            // (a) Everything delivered and issued.
            prop_assert!(inbox.is_empty(), "replica {me}: stuck inbox {inbox:?}");
            prop_assert!(own.is_empty(), "replica {me}: unissued {own:?}");
            // (b) Chain order respected among applied updates.
            for (pos, &k) in applied.iter().enumerate() {
                for &p in &batch[k].preds {
                    if batch[p].issuer == me
                        || !g.placement().stores(me, batch[p].register)
                    {
                        continue;
                    }
                    let ppos = applied.iter().position(|&a| a == p);
                    prop_assert!(
                        matches!(ppos, Some(pp) if pp < pos),
                        "replica {me}: {k} applied before its pred {p}"
                    );
                }
            }
        }
    }

    /// Merge is monotone and idempotent on edge timestamps.
    #[test]
    fn merge_monotone_idempotent(seed in 0u64..100) {
        let g = topology::ring(4);
        let reg = TsRegistry::new(&g, TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE));
        let mut rng = StdRng::seed_from_u64(seed);
        let r0 = ReplicaId::new(0);
        let r1 = ReplicaId::new(1);
        let mut a = reg.new_timestamp(r0);
        let mut b = reg.new_timestamp(r1);
        let mut regs0: Vec<RegisterId> =
            g.placement().registers_of(r0).iter().collect();
        regs0.shuffle(&mut rng);
        let mut regs1: Vec<RegisterId> =
            g.placement().registers_of(r1).iter().collect();
        regs1.shuffle(&mut rng);
        for x in regs0 {
            reg.advance(&mut a, x);
        }
        for x in regs1 {
            reg.advance(&mut b, x);
        }
        let before = b.clone();
        reg.merge(&mut b, r0, &a);
        // Monotone: no counter decreased.
        for (x, y) in before.values().iter().zip(b.values()) {
            prop_assert!(y >= x);
        }
        // Idempotent: merging again changes nothing.
        let once = b.clone();
        reg.merge(&mut b, r0, &a);
        prop_assert_eq!(once, b);
    }
}
