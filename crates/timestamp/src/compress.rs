//! Timestamp compression — Appendix D of the paper.
//!
//! The counters of a replica's timestamp are not independent: the counter
//! of edge `e_jk` equals the number of writes by `j` to registers in
//! `X_jk`, so if `X_j4 = X_j1 ∪ X_j2 ∪ X_j3` (disjointly), the fourth
//! counter is the sum of the first three. For each issuer `j`, the minimum
//! number of counters needed to reconstruct all of `O_j` (the outgoing
//! edges of `j` tracked in `E_i`) is the **rank** of the edge×register
//! incidence matrix; counting per register *atom* (groups of registers
//! with identical edge membership) is the paper's refinement that can
//! shrink individual counters further.
//!
//! In the full-replication clique every issuer's outgoing edges carry the
//! same register set (rank 1 each), so the compressed timestamp collapses
//! to one counter per replica — exactly a classic vector clock, as the
//! paper observes.

use prcc_sharegraph::{RegSet, RegisterId, ReplicaId, ShareGraph, TimestampGraph};
use std::collections::HashMap;

/// The result of compressing one replica's timestamp (experiment E5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionReport {
    /// The replica whose timestamp was analyzed.
    pub replica: ReplicaId,
    /// Counters before compression: `|E_i|`.
    pub uncompressed: usize,
    /// Minimum counters with linear reconstruction: `Σ_j rank(O_j)`.
    pub rank_compressed: usize,
    /// Counters when counting per register atom: `Σ_j atoms(O_j)`.
    pub atom_compressed: usize,
}

impl CompressionReport {
    /// Compression ratio `uncompressed / rank_compressed` (1.0 when
    /// nothing compresses; ∞ avoided by treating 0 as 1).
    pub fn ratio(&self) -> f64 {
        self.uncompressed as f64 / self.rank_compressed.max(1) as f64
    }
}

/// Rank over ℚ of the 0/1 matrix whose rows are the register sets in
/// `rows` (columns = union of registers). Uses fraction-free Gaussian
/// elimination on `i128` (Bareiss), exact for these sizes.
pub fn rank(rows: &[RegSet]) -> usize {
    // Column index assignment.
    let mut cols: Vec<RegisterId> = Vec::new();
    {
        let mut seen = RegSet::new();
        for r in rows {
            for x in r.iter() {
                if seen.insert(x) {
                    cols.push(x);
                }
            }
        }
    }
    if cols.is_empty() || rows.is_empty() {
        return 0;
    }
    let mut m: Vec<Vec<i128>> = rows
        .iter()
        .map(|r| cols.iter().map(|&c| i128::from(r.contains(c))).collect())
        .collect();
    let (nr, nc) = (m.len(), cols.len());
    let mut rank = 0;
    let mut prev_pivot: i128 = 1;
    for col in 0..nc {
        // Find pivot row.
        let pivot_row = (rank..nr).find(|&r| m[r][col] != 0);
        let Some(p) = pivot_row else { continue };
        m.swap(rank, p);
        let pivot = m[rank][col];
        for r in 0..nr {
            if r == rank || m[r][col] == 0 {
                continue;
            }
            for c in 0..nc {
                if c == col {
                    continue;
                }
                m[r][c] = (m[r][c] * pivot - m[rank][c] * m[r][col]) / prev_pivot;
            }
            m[r][col] = 0;
        }
        prev_pivot = pivot;
        rank += 1;
        if rank == nr {
            break;
        }
    }
    rank
}

/// Number of register *atoms* across `rows`: registers are equivalent when
/// they appear in exactly the same rows; atoms are the non-empty classes.
pub fn atoms(rows: &[RegSet]) -> usize {
    let mut signature: HashMap<RegisterId, u64> = HashMap::new();
    for (idx, r) in rows.iter().enumerate() {
        for x in r.iter() {
            *signature.entry(x).or_insert(0) |= 1u64 << (idx % 64);
        }
    }
    // For > 64 rows the bit signature could collide; fall back to exact
    // membership vectors in that case.
    if rows.len() <= 64 {
        let mut sigs: Vec<u64> = signature.values().copied().collect();
        sigs.sort_unstable();
        sigs.dedup();
        sigs.len()
    } else {
        let mut sigs: Vec<Vec<bool>> = signature
            .keys()
            .map(|&x| rows.iter().map(|r| r.contains(x)).collect())
            .collect();
        sigs.sort();
        sigs.dedup();
        sigs.len()
    }
}

/// Analyzes the compressibility of replica `tg.replica()`'s timestamp
/// under share graph `g` (Appendix D "Compressing timestamps").
pub fn compress_replica(g: &ShareGraph, tg: &TimestampGraph) -> CompressionReport {
    // Group tracked edges by issuer j.
    let mut by_issuer: HashMap<ReplicaId, Vec<RegSet>> = HashMap::new();
    for &e in tg.edges() {
        by_issuer
            .entry(e.from)
            .or_default()
            .push(g.edge_registers(e).clone());
    }
    let mut rank_total = 0;
    let mut atom_total = 0;
    for rows in by_issuer.values() {
        rank_total += rank(rows);
        atom_total += atoms(rows);
    }
    CompressionReport {
        replica: tg.replica(),
        uncompressed: tg.len(),
        rank_compressed: rank_total,
        atom_compressed: atom_total,
    }
}

/// An operational per-atom counting basis for one issuer's outgoing edges
/// — the finer compression of Appendix D ("count the number of updates on
/// x, y and z separately, instead of x, xy and xyz").
///
/// Registers are grouped into *atoms* (maximal groups appearing in exactly
/// the same edges); a counter is kept per atom, and any edge's counter is
/// reconstructed as the sum of its atoms' counters.
///
/// # Examples
///
/// ```
/// use prcc_sharegraph::RegSet;
/// use prcc_timestamp::compress::AtomBasis;
///
/// // Edges with register sets {x}, {y}, {x,y}.
/// let rows = vec![
///     RegSet::from_indices([0]),
///     RegSet::from_indices([1]),
///     RegSet::from_indices([0, 1]),
/// ];
/// let basis = AtomBasis::from_edges(&rows);
/// assert_eq!(basis.num_atoms(), 2); // {x} and {y}
/// let mut counts = vec![0u64; basis.num_atoms()];
/// // A write to x bumps x's atom:
/// basis.record_write(prcc_sharegraph::RegisterId::new(0), &mut counts);
/// assert_eq!(basis.edge_count(0, &counts), 1); // {x}
/// assert_eq!(basis.edge_count(1, &counts), 0); // {y}
/// assert_eq!(basis.edge_count(2, &counts), 1); // {x,y}
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomBasis {
    /// Atom register sets (disjoint).
    atoms: Vec<RegSet>,
    /// For each original edge, the indices of its atoms.
    edge_atoms: Vec<Vec<usize>>,
}

impl AtomBasis {
    /// Builds the basis from the edges' register sets.
    pub fn from_edges(rows: &[RegSet]) -> Self {
        // Group registers by membership signature.
        let mut sig_of: HashMap<Vec<bool>, usize> = HashMap::new();
        let mut atoms: Vec<RegSet> = Vec::new();
        let mut all = RegSet::new();
        for r in rows {
            all.union_with(r);
        }
        for x in all.iter() {
            let sig: Vec<bool> = rows.iter().map(|r| r.contains(x)).collect();
            let idx = *sig_of.entry(sig).or_insert_with(|| {
                atoms.push(RegSet::new());
                atoms.len() - 1
            });
            atoms[idx].insert(x);
        }
        let edge_atoms = rows
            .iter()
            .map(|r| {
                atoms
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.intersects(r))
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        AtomBasis { atoms, edge_atoms }
    }

    /// Number of atom counters needed.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Number of original edges covered.
    pub fn num_edges(&self) -> usize {
        self.edge_atoms.len()
    }

    /// Records a write to register `x` in the per-atom counter vector.
    /// Returns `true` if the register belongs to some atom.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != num_atoms()`.
    #[inline]
    pub fn record_write(&self, x: RegisterId, counts: &mut [u64]) -> bool {
        assert_eq!(counts.len(), self.atoms.len(), "count vector shape");
        for (i, a) in self.atoms.iter().enumerate() {
            if a.contains(x) {
                counts[i] += 1;
                return true;
            }
        }
        false
    }

    /// Reconstructs the counter of edge `edge` from the atom counters.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range or the count vector has the wrong
    /// shape.
    #[inline]
    pub fn edge_count(&self, edge: usize, counts: &[u64]) -> u64 {
        assert_eq!(counts.len(), self.atoms.len(), "count vector shape");
        self.edge_atoms[edge].iter().map(|&a| counts[a]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::{topology, LoopConfig, Placement, TimestampGraphs};

    fn rs(v: &[u32]) -> RegSet {
        RegSet::from_indices(v.iter().copied())
    }

    #[test]
    fn rank_of_disjoint_rows() {
        assert_eq!(rank(&[rs(&[0]), rs(&[1]), rs(&[2])]), 3);
    }

    #[test]
    fn rank_detects_union_dependency() {
        // {x}, {y}, {z}, {x,y,z}: the fourth row is the sum of the others.
        assert_eq!(rank(&[rs(&[0]), rs(&[1]), rs(&[2]), rs(&[0, 1, 2])]), 3);
    }

    #[test]
    fn rank_of_identical_rows_is_one() {
        assert_eq!(rank(&[rs(&[0, 1]), rs(&[0, 1]), rs(&[0, 1])]), 1);
    }

    #[test]
    fn rank_of_empty() {
        assert_eq!(rank(&[]), 0);
        assert_eq!(rank(&[RegSet::new()]), 0);
    }

    #[test]
    fn rank_overlapping_independent() {
        // {x,y}, {y,z}: independent (rank 2) though overlapping.
        assert_eq!(rank(&[rs(&[0, 1]), rs(&[1, 2])]), 2);
    }

    #[test]
    fn atoms_counts_membership_classes() {
        // {x}, {y}, {z}, {x,y,z}: atoms are {x}, {y}, {z} ⇒ 3.
        assert_eq!(atoms(&[rs(&[0]), rs(&[1]), rs(&[2]), rs(&[0, 1, 2])]), 3);
        // {x,y} and {y,z}: atoms {x}, {y}, {z} ⇒ 3 (atoms ≥ rank).
        assert_eq!(atoms(&[rs(&[0, 1]), rs(&[1, 2])]), 3);
        // identical rows: single atom.
        assert_eq!(atoms(&[rs(&[0, 1]), rs(&[0, 1])]), 1);
    }

    #[test]
    fn appendix_d_example_compresses() {
        // The nested_example topology embeds the X_j1={x}, X_j2={y},
        // X_j3={z}, X_j4={x,y,z} example: replica 4 sees issuer 0's four
        // outgoing edges... here we check issuer 0's edges from replica 4's
        // perspective using the raw row API.
        let g = topology::nested_example();
        use prcc_sharegraph::edge;
        let rows: Vec<RegSet> = [edge(0, 1), edge(0, 2), edge(0, 3), edge(0, 4)]
            .iter()
            .map(|&e| g.edge_registers(e).clone())
            .collect();
        assert_eq!(rank(&rows), 3);
        assert_eq!(atoms(&rows), 3);
    }

    #[test]
    fn clique_compresses_to_vector_clock() {
        // Full replication: each replica's compressed timestamp has R
        // counters — the classic vector clock (paper, Section 5).
        let r = 5;
        let g = topology::clique_full(r, 4);
        let graphs = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
        for tg in graphs.iter() {
            let rep = compress_replica(&g, tg);
            assert_eq!(rep.rank_compressed, r, "replica {}", tg.replica());
            assert_eq!(rep.atom_compressed, r);
            assert!(rep.uncompressed > r);
            assert!(rep.ratio() > 1.0);
        }
    }

    #[test]
    fn ring_does_not_compress() {
        // Distinct register per edge: nothing is linearly dependent.
        let g = topology::ring(5);
        let graphs = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
        for tg in graphs.iter() {
            let rep = compress_replica(&g, tg);
            assert_eq!(rep.rank_compressed, rep.uncompressed);
            assert!((rep.ratio() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn atom_basis_reconstructs_exactly() {
        // Appendix D example: edges {x}, {y}, {z}, {x,y,z}.
        let rows = vec![rs(&[0]), rs(&[1]), rs(&[2]), rs(&[0, 1, 2])];
        let basis = AtomBasis::from_edges(&rows);
        assert_eq!(basis.num_atoms(), 3);
        assert_eq!(basis.num_edges(), 4);
        let mut counts = vec![0u64; 3];
        // Simulate writes and compare against direct per-edge counting.
        let mut direct = [0u64; 4];
        let writes = [0u32, 1, 0, 2, 2, 2, 1];
        for &w in &writes {
            assert!(basis.record_write(RegisterId::new(w), &mut counts));
            for (e, r) in rows.iter().enumerate() {
                if r.contains(RegisterId::new(w)) {
                    direct[e] += 1;
                }
            }
        }
        for (e, &d) in direct.iter().enumerate() {
            assert_eq!(basis.edge_count(e, &counts), d, "edge {e}");
        }
    }

    #[test]
    fn atom_basis_unknown_register() {
        let basis = AtomBasis::from_edges(&[rs(&[0])]);
        let mut counts = vec![0u64; 1];
        assert!(!basis.record_write(RegisterId::new(9), &mut counts));
        assert_eq!(counts, vec![0]);
    }

    #[test]
    fn atom_basis_groups_coupled_registers() {
        // x and y always appear together: one atom.
        let rows = vec![rs(&[0, 1]), rs(&[0, 1, 2])];
        let basis = AtomBasis::from_edges(&rows);
        assert_eq!(basis.num_atoms(), 2); // {x,y} and {z}
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn atom_basis_validates_shape() {
        let basis = AtomBasis::from_edges(&[rs(&[0])]);
        let counts = vec![0u64; 3];
        let _ = basis.edge_count(0, &counts);
    }

    #[test]
    fn empty_graph_report() {
        let g = ShareGraph::new(Placement::builder(2).build());
        let tg = TimestampGraph::build(&g, ReplicaId::new(0), LoopConfig::EXHAUSTIVE);
        let rep = compress_replica(&g, &tg);
        assert_eq!(rep.uncompressed, 0);
        assert_eq!(rep.rank_compressed, 0);
        assert_eq!(rep.ratio(), 0.0);
    }
}
