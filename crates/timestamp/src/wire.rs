//! Per-pair wire encoding of edge timestamps: projection, linear-
//! dependence compression, and delta/varint framing (Section 5 made
//! operational on the hot path).
//!
//! A replica `k` sending an update to replica `i` does not need to ship
//! all of `τ_k`: the receiver's `merge` and predicate `J` read only the
//! common-edge slice `E_i ∩ E_k`. A [`PairLayout`] — negotiated once per
//! ordered pair and cached in the registry — records:
//!
//! * the **projection**: which positions of the sender's full counter
//!   vector make up the common slice, in the receiver's pair order;
//! * the **compression**: which slice entries are linearly *derived* from
//!   others and therefore never transmitted. Only the sender's own
//!   outgoing edges (`e_kj` rows) participate: `advance` maintains those
//!   counters exactly as `row · atom-counts`, so any integer relation
//!   between the rows (found by exact rational elimination over the
//!   Appendix-D register atoms) holds for the counter *values* at every
//!   instant. Counters issued by other replicas reach `τ_k` through
//!   pointwise-max merges that can mix snapshots from different chains,
//!   which breaks linearity — those entries are always explicit.
//!
//! The transmitted entries are framed as zig-zag varints of the
//! wrapping difference against the previous frame on the same pair
//! stream ([`WireEncoder`] / [`WireDecoder`]), modelling a per-pair FIFO
//! byte stream (TCP-like framing) underneath the protocol's non-FIFO
//! delivery. Every derived coefficient vector is verified symbolically at
//! construction; a row that cannot be proven derived stays explicit, so
//! decoding is exact by construction.

use prcc_sharegraph::RegSet;
use std::fmt;

/// Why a frame was rejected. Every rejection is **transactional**: the
/// decoder's stream state is untouched, so a subsequent well-formed frame
/// still decodes correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// A varint was truncated or would overflow 64 bits.
    BadVarint {
        /// Byte offset of the offending varint within the frame.
        offset: usize,
    },
    /// Bytes left over after the last expected varint.
    TrailingBytes {
        /// Where the frame's payload ended.
        consumed: usize,
        /// The frame's actual length.
        len: usize,
    },
    /// A batch frame's count varint exceeds what the frame could
    /// physically hold.
    ImplausibleCount {
        /// The claimed update count.
        count: u64,
    },
    /// A derived row's linear relation did not reproduce an exact,
    /// in-range counter from the explicit entries — the layout and the
    /// values disagree, so the decode would be corrupt.
    InexactDerivedRow {
        /// Common-slice index of the offending derived row.
        index: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadVarint { offset } => {
                write!(f, "truncated or over-long varint at byte {offset}")
            }
            DecodeError::TrailingBytes { consumed, len } => {
                write!(f, "{} trailing bytes after frame payload", len - consumed)
            }
            DecodeError::ImplausibleCount { count } => {
                write!(f, "batch count {count} exceeds frame capacity")
            }
            DecodeError::InexactDerivedRow { index } => {
                write!(f, "derived row {index} does not reconstruct exactly")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Appends `v` to `buf` as an LEB128 varint (7 bits per byte).
#[inline]
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `buf` at `*pos`, advancing `*pos`.
/// Returns `None` on truncated or over-long input.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow 64 bits
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Number of bytes [`write_varint`] uses for `v`.
pub fn varint_len(v: u64) -> usize {
    (64 - v.leading_zeros()).div_ceil(7).max(1) as usize
}

/// Zig-zag maps signed deltas to small unsigned varints.
#[inline]
fn zigzag(i: i64) -> u64 {
    ((i << 1) ^ (i >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Delta of `cur` against `prev` as a zig-zag varint payload. The
/// wrapping difference is lossless for **all** 64-bit patterns (including
/// decreases and `u64::MAX` jumps): [`decode_delta`] inverts it exactly.
#[inline]
pub fn encode_delta(prev: u64, cur: u64) -> u64 {
    zigzag(cur.wrapping_sub(prev) as i64)
}

/// Inverse of [`encode_delta`].
#[inline]
pub fn decode_delta(prev: u64, z: u64) -> u64 {
    prev.wrapping_add(unzigzag(z) as u64)
}

/// An exact rational (reduced, positive denominator) over `i128` — large
/// enough for elimination over the tiny 0/1 atom matrices involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frac {
    num: i128,
    den: i128,
}

impl Frac {
    const ZERO: Frac = Frac { num: 0, den: 1 };

    fn new(num: i128, den: i128) -> Frac {
        assert!(den != 0, "zero denominator");
        let g = gcd(num.unsigned_abs(), den.unsigned_abs()) as i128;
        let sign = if den < 0 { -1 } else { 1 };
        Frac {
            num: sign * num / g.max(1),
            den: sign * den / g.max(1),
        }
    }

    fn from_int(v: i128) -> Frac {
        Frac { num: v, den: 1 }
    }

    fn is_zero(self) -> bool {
        self.num == 0
    }

    fn add(self, o: Frac) -> Frac {
        Frac::new(self.num * o.den + o.num * self.den, self.den * o.den)
    }

    fn sub(self, o: Frac) -> Frac {
        Frac::new(self.num * o.den - o.num * self.den, self.den * o.den)
    }

    fn mul(self, o: Frac) -> Frac {
        Frac::new(self.num * o.num, self.den * o.den)
    }

    fn div(self, o: Frac) -> Frac {
        assert!(o.num != 0, "division by zero");
        Frac::new(self.num * o.den, self.den * o.num)
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// A slice entry reconstructed from explicit entries instead of being
/// transmitted: `value[index] = (Σ terms (j, c): c · value[j]) / den`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DerivedRow {
    /// Index into the common slice.
    pub index: usize,
    /// `(slice index, integer coefficient)` pairs over explicit entries.
    pub terms: Vec<(usize, i128)>,
    /// Strictly positive divisor (division is exact by construction).
    pub den: i128,
}

/// The negotiated wire layout for one ordered pair `(receiver, sender)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PairLayout {
    /// For each common-slice entry: its position in the sender's full
    /// counter vector (`E_k` order).
    sender_positions: Vec<usize>,
    /// Slice indices transmitted on the wire, in slice order.
    explicit: Vec<usize>,
    /// For each explicit entry (wire order): its position in the sender's
    /// full counter vector. Fuses the `sender_positions[explicit[j]]`
    /// double indirection out of the encode inner loop.
    explicit_positions: Vec<usize>,
    /// Slice indices reconstructed by the decoder.
    derived: Vec<DerivedRow>,
}

impl PairLayout {
    /// Builds the layout. `sender_positions[j]` is the sender-vector
    /// position of common-slice entry `j`; `own_rows` lists, for every
    /// slice entry that is one of the **sender's own outgoing edges**, the
    /// pair `(slice index, registers shared on that edge)`. Only own rows
    /// are eligible for derivation (see the module docs); each candidate
    /// relation is verified symbolically over the register atoms and
    /// demoted to explicit if the check fails.
    pub fn build(sender_positions: Vec<usize>, own_rows: &[(usize, RegSet)]) -> PairLayout {
        let len = sender_positions.len();
        let mut is_derived = vec![false; len];
        let mut derived = Vec::new();

        if own_rows.len() > 1 {
            // Row vectors over atom columns (atoms partition the union of
            // the rows' registers; identical-membership registers share a
            // column, the Appendix-D refinement).
            let rows: Vec<RegSet> = own_rows.iter().map(|(_, r)| r.clone()).collect();
            let atom_vecs = atom_vectors(&rows);
            let ncols = atom_vecs.first().map_or(0, Vec::len);

            // Incremental echelon basis over the atom space; each echelon
            // row carries its expression in terms of accepted basis rows
            // (indexed into `basis_slice`, the slice indices of explicit
            // own rows).
            let mut ech: Vec<(Vec<Frac>, Vec<Frac>)> = Vec::new();
            let mut basis_slice: Vec<usize> = Vec::new();
            for (r, vec) in atom_vecs.iter().enumerate() {
                let slice_idx = own_rows[r].0;
                let mut residual: Vec<Frac> = vec.iter().map(|&v| Frac::from_int(v)).collect();
                let mut combo = vec![Frac::ZERO; basis_slice.len()];
                for (erow, ecombo) in &ech {
                    let lead = erow.iter().position(|f| !f.is_zero()).unwrap();
                    if residual[lead].is_zero() {
                        continue;
                    }
                    let factor = residual[lead].div(erow[lead]);
                    for c in 0..ncols {
                        residual[c] = residual[c].sub(factor.mul(erow[c]));
                    }
                    for (j, &ec) in ecombo.iter().enumerate() {
                        combo[j] = combo[j].add(factor.mul(ec));
                    }
                }
                if residual.iter().all(|f| f.is_zero()) {
                    // Candidate derived row: value = Σ combo_j · basis_j.
                    if let Some(dr) =
                        finish_derived(slice_idx, &combo, &basis_slice, &atom_vecs, own_rows, vec)
                    {
                        is_derived[slice_idx] = true;
                        derived.push(dr);
                        continue;
                    }
                }
                // New basis (explicit) row.
                let mut ecombo = vec![Frac::ZERO; basis_slice.len() + 1];
                for (j, &c) in combo.iter().enumerate() {
                    ecombo[j] = Frac::ZERO.sub(c);
                }
                ecombo[basis_slice.len()] = Frac::from_int(1);
                basis_slice.push(slice_idx);
                // Grow earlier combos to the new basis length.
                for (_, ec) in &mut ech {
                    ec.push(Frac::ZERO);
                }
                if !residual.iter().all(|f| f.is_zero()) {
                    // Gauss–Jordan: clear the new row's lead column from
                    // every existing echelon row, so all rows stay
                    // mutually reduced and one reduction pass (in any
                    // order) is complete.
                    let lead = residual.iter().position(|f| !f.is_zero()).unwrap();
                    for (erow, ec) in &mut ech {
                        if erow[lead].is_zero() {
                            continue;
                        }
                        let f = erow[lead].div(residual[lead]);
                        for c in 0..ncols {
                            erow[c] = erow[c].sub(f.mul(residual[c]));
                        }
                        for (j, e) in ec.iter_mut().enumerate() {
                            *e = e.sub(f.mul(ecombo[j]));
                        }
                    }
                    ech.push((residual, ecombo));
                }
            }
        }

        let explicit = (0..len).filter(|&j| !is_derived[j]).collect();
        PairLayout::from_raw_parts(sender_positions, explicit, derived)
    }

    /// A layout with no compression: every slice entry explicit.
    pub fn identity(sender_positions: Vec<usize>) -> PairLayout {
        let explicit = (0..sender_positions.len()).collect();
        PairLayout::from_raw_parts(sender_positions, explicit, Vec::new())
    }

    /// Assembles a layout from an already-decided partition. The normal
    /// constructor is [`PairLayout::build`]; this one exists for fault
    /// injection and tests that need a layout whose derived rows are *not*
    /// symbolically verified (e.g. to exercise the checked decode path).
    ///
    /// # Panics
    ///
    /// Panics if an explicit or derived index is out of slice range.
    pub fn from_raw_parts(
        sender_positions: Vec<usize>,
        explicit: Vec<usize>,
        derived: Vec<DerivedRow>,
    ) -> PairLayout {
        let len = sender_positions.len();
        assert!(
            explicit.iter().all(|&j| j < len) && derived.iter().all(|d| d.index < len),
            "slice index out of range"
        );
        let explicit_positions = explicit.iter().map(|&j| sender_positions[j]).collect();
        PairLayout {
            sender_positions,
            explicit,
            explicit_positions,
            derived,
        }
    }

    /// The uncompressed fallback of this layout: same projection, every
    /// slice entry explicit. Used when a derived row fails verification
    /// and the pair must demote to explicit rows.
    pub fn to_explicit(&self) -> PairLayout {
        PairLayout::identity(self.sender_positions.clone())
    }

    /// Number of common-slice counters.
    pub fn common_len(&self) -> usize {
        self.sender_positions.len()
    }

    /// Number of counters actually transmitted.
    pub fn num_explicit(&self) -> usize {
        self.explicit.len()
    }

    /// Number of counters reconstructed by the decoder.
    pub fn num_derived(&self) -> usize {
        self.derived.len()
    }

    /// For each common-slice entry: its position in the sender's full
    /// counter vector.
    pub fn sender_positions(&self) -> &[usize] {
        &self.sender_positions
    }

    /// Slice indices transmitted on the wire, in wire order.
    pub fn explicit_indices(&self) -> &[usize] {
        &self.explicit
    }

    /// The decoder-side derived rows.
    pub fn derived_rows(&self) -> &[DerivedRow] {
        &self.derived
    }

    /// Projects the sender's full counter vector to the common slice.
    ///
    /// # Panics
    ///
    /// Panics if `full` is shorter than the largest projected position.
    pub fn project(&self, full: &[u64]) -> Vec<u64> {
        self.sender_positions.iter().map(|&p| full[p]).collect()
    }

    /// Reconstructs the derived entries of `slice` in place from its
    /// explicit entries. Division is exact for layouts produced by
    /// [`PairLayout::build`] (the relations are verified symbolically at
    /// construction); an inexact or out-of-range result means layout and
    /// values disagree, and the frame is rejected rather than silently
    /// corrupting the decoded timestamp.
    fn reconstruct(&self, slice: &mut [u64]) -> Result<(), DecodeError> {
        for d in &self.derived {
            let sum: i128 = d.terms.iter().map(|&(j, c)| c * i128::from(slice[j])).sum();
            let err = DecodeError::InexactDerivedRow { index: d.index };
            if d.den <= 0 || sum % d.den != 0 {
                return Err(err);
            }
            let v = sum / d.den;
            if v < 0 || v > i128::from(u64::MAX) {
                return Err(err);
            }
            slice[d.index] = v as u64;
        }
        Ok(())
    }

    /// Checks that the **complete** slice (explicit and derived entries
    /// all present, e.g. straight from [`PairLayout::project`]) satisfies
    /// every derived-row relation — i.e. that a receiver reconstructing
    /// the derived entries from the explicit ones would land on exactly
    /// these values. The sender-side guard of the compressed path.
    pub fn verify_derived(&self, slice: &[u64]) -> Result<(), DecodeError> {
        for d in &self.derived {
            let sum: i128 = d.terms.iter().map(|&(j, c)| c * i128::from(slice[j])).sum();
            if d.den <= 0 || sum != d.den * i128::from(slice[d.index]) {
                return Err(DecodeError::InexactDerivedRow { index: d.index });
            }
        }
        Ok(())
    }

    /// Encodes one delta frame: the explicit projections of `full`,
    /// framed against the previous frame's explicit values `prev`,
    /// appended to `buf`. The new explicit values are written to `next`
    /// (cleared first) so the caller commits stream state explicitly —
    /// this is the stateless primitive under [`WireEncoder`] and the
    /// encode-once fan-out. Returns the bytes appended.
    ///
    /// # Panics
    ///
    /// Panics if `prev` is shorter than the explicit count or `full` does
    /// not cover the layout's projected positions.
    pub fn encode_frame(
        &self,
        prev: &[u64],
        full: &[u64],
        buf: &mut Vec<u8>,
        next: &mut Vec<u64>,
    ) -> usize {
        let start = buf.len();
        let ep = &self.explicit_positions;
        // Steady-state deltas are overwhelmingly one byte; reserve for
        // that case so the loop almost never grows the buffer.
        buf.reserve(ep.len() + 8);
        next.clear();
        next.reserve(ep.len());
        // Chunks of 8: when every zig-zag delta in the chunk fits one
        // LEB128 byte (the steady state), the whole chunk lands with a
        // single 8-byte extend — branch-free per element, and the
        // all-small test is one OR-reduction the compiler vectorizes.
        let mut j = 0;
        while j + 8 <= ep.len() {
            let mut z = [0u64; 8];
            let mut all = 0u64;
            for (k, zk) in z.iter_mut().enumerate() {
                let v = full[ep[j + k]];
                *zk = encode_delta(prev[j + k], v);
                all |= *zk;
                next.push(v);
            }
            if all < 0x80 {
                let bytes = z.map(|d| d as u8);
                buf.extend_from_slice(&bytes);
            } else {
                for &zk in &z {
                    write_varint(buf, zk);
                }
            }
            j += 8;
        }
        while j < ep.len() {
            let v = full[ep[j]];
            write_varint(buf, encode_delta(prev[j], v));
            next.push(v);
            j += 1;
        }
        buf.len() - start
    }

    /// The pre-chunking scalar body of [`PairLayout::encode_frame`], kept
    /// as the byte-identical reference for differential tests and the
    /// `varint` micro-bench.
    #[doc(hidden)]
    pub fn encode_frame_scalar(
        &self,
        prev: &[u64],
        full: &[u64],
        buf: &mut Vec<u8>,
        next: &mut Vec<u64>,
    ) -> usize {
        let start = buf.len();
        buf.reserve(self.explicit_positions.len() + 8);
        next.clear();
        next.reserve(self.explicit_positions.len());
        for (j, &pos) in self.explicit_positions.iter().enumerate() {
            let v = full[pos];
            let z = encode_delta(prev[j], v);
            if z < 0x80 {
                buf.push(z as u8);
            } else {
                write_varint(buf, z);
            }
            next.push(v);
        }
        buf.len() - start
    }

    /// Decodes one delta frame from `frame` at `*pos` against the
    /// previous explicit values `prev`, returning the full common slice
    /// (explicit entries from the wire, derived entries reconstructed)
    /// and writing the new explicit values to `next` (cleared first). The
    /// caller owns stream-state commit and the trailing-bytes check;
    /// `prev` is never modified, so rejection is transactional for free.
    ///
    /// # Panics
    ///
    /// Panics if `prev` is shorter than the explicit count.
    pub fn decode_frame(
        &self,
        prev: &[u64],
        frame: &[u8],
        pos: &mut usize,
        next: &mut Vec<u64>,
    ) -> Result<Vec<u64>, DecodeError> {
        let mut slice = vec![0u64; self.common_len()];
        next.clear();
        next.reserve(self.explicit.len());
        let n = self.explicit.len();
        let mut j = 0;
        // Chunks of 8: a block of 8 continuation-free bytes is 8 complete
        // one-byte varints (a one-byte varint is exactly a byte < 0x80),
        // so the steady state decodes with one OR-reduction test and no
        // per-byte branches.
        while j + 8 <= n {
            if let Some(chunk) = frame.get(*pos..*pos + 8) {
                let all = chunk.iter().fold(0u8, |a, &b| a | b);
                if all < 0x80 {
                    for (k, &b) in chunk.iter().enumerate() {
                        let v = decode_delta(prev[j + k], u64::from(b));
                        next.push(v);
                        slice[self.explicit[j + k]] = v;
                    }
                    *pos += 8;
                    j += 8;
                    continue;
                }
            }
            // Probe miss: some varint in this chunk carries a
            // continuation byte. Decode the whole chunk scalar before
            // probing again, so a continuation-heavy frame pays one
            // probe per 8 entries rather than one per entry.
            for _ in 0..8 {
                let offset = *pos;
                let z = read_varint(frame, pos).ok_or(DecodeError::BadVarint { offset })?;
                let v = decode_delta(prev[j], z);
                next.push(v);
                slice[self.explicit[j]] = v;
                j += 1;
            }
        }
        while j < n {
            let offset = *pos;
            let z = read_varint(frame, pos).ok_or(DecodeError::BadVarint { offset })?;
            let v = decode_delta(prev[j], z);
            next.push(v);
            slice[self.explicit[j]] = v;
            j += 1;
        }
        self.reconstruct(&mut slice)?;
        Ok(slice)
    }

    /// The pre-chunking scalar body of [`PairLayout::decode_frame`], kept
    /// as the byte-identical reference for differential tests and the
    /// `varint` micro-bench.
    #[doc(hidden)]
    pub fn decode_frame_scalar(
        &self,
        prev: &[u64],
        frame: &[u8],
        pos: &mut usize,
        next: &mut Vec<u64>,
    ) -> Result<Vec<u64>, DecodeError> {
        let mut slice = vec![0u64; self.common_len()];
        next.clear();
        next.reserve(self.explicit.len());
        for (j, &slice_idx) in self.explicit.iter().enumerate() {
            let offset = *pos;
            let z = read_varint(frame, pos).ok_or(DecodeError::BadVarint { offset })?;
            let v = decode_delta(prev[j], z);
            next.push(v);
            slice[slice_idx] = v;
        }
        self.reconstruct(&mut slice)?;
        Ok(slice)
    }
}

/// 0/1 row vectors over atom columns: registers with identical row
/// membership collapse to one column.
fn atom_vectors(rows: &[RegSet]) -> Vec<Vec<i128>> {
    let mut all = RegSet::new();
    for r in rows {
        all.union_with(r);
    }
    let mut sigs: Vec<Vec<bool>> = Vec::new();
    for x in all.iter() {
        let sig: Vec<bool> = rows.iter().map(|r| r.contains(x)).collect();
        if !sigs.contains(&sig) {
            sigs.push(sig);
        }
    }
    rows.iter()
        .enumerate()
        .map(|(r, _)| sigs.iter().map(|s| i128::from(s[r])).collect())
        .collect()
}

/// Converts the rational combination `combo` over `basis_slice` into an
/// integer [`DerivedRow`] and verifies it symbolically over the atom
/// columns: `den · target_vec == Σ num_j · basis_vec_j` exactly. Returns
/// `None` (keep the row explicit) if the relation does not check out.
fn finish_derived(
    slice_idx: usize,
    combo: &[Frac],
    basis_slice: &[usize],
    atom_vecs: &[Vec<i128>],
    own_rows: &[(usize, RegSet)],
    target_vec: &[i128],
) -> Option<DerivedRow> {
    // Common denominator.
    let mut den: i128 = 1;
    for c in combo {
        if !c.is_zero() {
            den = den / gcd(den.unsigned_abs(), c.den.unsigned_abs()) as i128 * c.den;
        }
    }
    let den = den.abs().max(1);
    let mut terms = Vec::new();
    for (j, c) in combo.iter().enumerate() {
        if c.is_zero() {
            continue;
        }
        terms.push((basis_slice[j], c.num * (den / c.den)));
    }
    // Symbolic verification over atoms.
    let ncols = target_vec.len();
    for col in 0..ncols {
        let mut sum: i128 = 0;
        for &(slice_j, coeff) in &terms {
            let r = own_rows.iter().position(|&(s, _)| s == slice_j)?;
            sum += coeff * atom_vecs[r][col];
        }
        if sum != den * target_vec[col] {
            return None;
        }
    }
    Some(DerivedRow {
        index: slice_idx,
        terms,
        den,
    })
}

/// Sending half of one per-pair wire stream: frames the explicit slice
/// entries as zig-zag varint deltas against the previous frame.
#[derive(Clone)]
pub struct WireEncoder {
    last: Vec<u64>,
    /// Spare buffer rotated with `last` so a frame never allocates.
    scratch: Vec<u64>,
}

impl PartialEq for WireEncoder {
    fn eq(&self, other: &Self) -> bool {
        self.last == other.last
    }
}
impl Eq for WireEncoder {}

impl fmt::Debug for WireEncoder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WireEncoder")
            .field("counters", &self.last.len())
            .finish()
    }
}

impl WireEncoder {
    /// A fresh stream for `layout` (all-zero reference frame, matching
    /// the receiver's zero-initialized decoder).
    pub fn new(layout: &PairLayout) -> WireEncoder {
        WireEncoder {
            last: vec![0; layout.explicit.len()],
            scratch: Vec::new(),
        }
    }

    /// Encodes the sender's **full** counter vector into `buf` (cleared
    /// first) and returns the frame length in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `full` does not cover the layout's projected positions.
    pub fn encode(&mut self, layout: &PairLayout, full: &[u64], buf: &mut Vec<u8>) -> usize {
        buf.clear();
        let mut next = std::mem::take(&mut self.scratch);
        layout.encode_frame(&self.last, full, buf, &mut next);
        self.scratch = std::mem::replace(&mut self.last, next);
        buf.len()
    }

    /// Encodes `k` consecutive full counter vectors into one batch frame:
    /// a count varint followed by `k` ordinary delta frames, each framed
    /// against its *predecessor in the batch* (the first against the
    /// stream state). Consecutive updates on one pair differ by a handful
    /// of small increments, so intra-batch deltas are the cheapest
    /// reference available. Returns the frame length in bytes.
    ///
    /// # Panics
    ///
    /// Panics if any vector does not cover the layout's projected
    /// positions.
    pub fn encode_batch(
        &mut self,
        layout: &PairLayout,
        fulls: &[&[u64]],
        buf: &mut Vec<u8>,
    ) -> usize {
        buf.clear();
        write_varint(buf, fulls.len() as u64);
        let mut next = std::mem::take(&mut self.scratch);
        for full in fulls {
            layout.encode_frame(&self.last, full, buf, &mut next);
            std::mem::swap(&mut self.last, &mut next);
        }
        self.scratch = next;
        buf.len()
    }
}

/// Receiving half of one per-pair wire stream.
#[derive(Clone)]
pub struct WireDecoder {
    last: Vec<u64>,
    /// Spare buffer rotated with `last` so a frame never clones state.
    scratch: Vec<u64>,
}

impl PartialEq for WireDecoder {
    fn eq(&self, other: &Self) -> bool {
        self.last == other.last
    }
}
impl Eq for WireDecoder {}

impl fmt::Debug for WireDecoder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WireDecoder")
            .field("counters", &self.last.len())
            .finish()
    }
}

impl WireDecoder {
    /// A fresh stream for `layout`.
    pub fn new(layout: &PairLayout) -> WireDecoder {
        WireDecoder {
            last: vec![0; layout.explicit.len()],
            scratch: Vec::new(),
        }
    }

    /// Decodes one frame into the full common slice (explicit entries
    /// from the wire, derived entries reconstructed). Rejection is
    /// transactional: a malformed frame (truncated, over-long, trailing
    /// bytes, or an inexact derived row) leaves the stream state
    /// untouched, so a subsequent well-formed frame still decodes
    /// correctly.
    pub fn decode(&mut self, layout: &PairLayout, frame: &[u8]) -> Result<Vec<u64>, DecodeError> {
        let mut pos = 0;
        let mut next = std::mem::take(&mut self.scratch);
        let res = layout.decode_frame(&self.last, frame, &mut pos, &mut next);
        match res {
            Ok(_) if pos != frame.len() => {
                self.scratch = next;
                Err(DecodeError::TrailingBytes {
                    consumed: pos,
                    len: frame.len(),
                })
            }
            Ok(slice) => {
                self.scratch = std::mem::replace(&mut self.last, next);
                Ok(slice)
            }
            Err(e) => {
                self.scratch = next;
                Err(e)
            }
        }
    }

    /// Decodes one batch frame (see [`WireEncoder::encode_batch`]) into
    /// the per-update common slices, in batch order. The decode is
    /// **transactional across the whole batch**: a malformed frame
    /// (truncated, over-long, trailing bytes, an implausible count, or an
    /// inexact derived row) is rejected with the stream state untouched.
    pub fn decode_batch(
        &mut self,
        layout: &PairLayout,
        frame: &[u8],
    ) -> Result<Vec<Vec<u64>>, DecodeError> {
        let mut pos = 0;
        let count = read_varint(frame, &mut pos).ok_or(DecodeError::BadVarint { offset: 0 })?;
        // Each update contributes at least one byte per explicit counter,
        // so any count the frame cannot physically hold is malformed
        // (guards the allocation below against garbage counts). Layouts
        // with no explicit counters carry nothing per update; bound the
        // count there too so a corrupt frame cannot force a huge alloc.
        let plausible = if layout.explicit.is_empty() {
            count <= 1 << 20
        } else {
            count <= (frame.len() / layout.explicit.len()) as u64
        };
        if !plausible {
            return Err(DecodeError::ImplausibleCount { count });
        }
        // `prev` evolves through the batch (each update frames against
        // its predecessor); `last` stays untouched until the whole batch
        // parses, which makes rejection transactional.
        let mut prev = std::mem::take(&mut self.scratch);
        prev.clear();
        prev.extend_from_slice(&self.last);
        let mut next = Vec::with_capacity(layout.explicit.len());
        let mut slices = Vec::with_capacity(count as usize);
        for _ in 0..count {
            match layout.decode_frame(&prev, frame, &mut pos, &mut next) {
                Ok(slice) => {
                    slices.push(slice);
                    std::mem::swap(&mut prev, &mut next);
                }
                Err(e) => {
                    self.scratch = prev;
                    return Err(e);
                }
            }
        }
        if pos != frame.len() {
            self.scratch = prev;
            return Err(DecodeError::TrailingBytes {
                consumed: pos,
                len: frame.len(),
            });
        }
        self.scratch = std::mem::replace(&mut self.last, prev);
        Ok(slices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(v: &[u32]) -> RegSet {
        RegSet::from_indices(v.iter().copied())
    }

    #[test]
    fn varint_round_trip_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "len of {v}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80], &mut pos), None);
        // 11 continuation bytes: more than 64 bits.
        let over = [0xffu8; 11];
        let mut pos = 0;
        assert_eq!(read_varint(&over, &mut pos), None);
    }

    #[test]
    fn delta_round_trip_extremes() {
        for (prev, cur) in [
            (0u64, 0u64),
            (0, u64::MAX),
            (u64::MAX, 0),
            (5, 3),
            (u64::MAX, u64::MAX),
            (1 << 63, (1 << 63) - 1),
        ] {
            assert_eq!(decode_delta(prev, encode_delta(prev, cur)), cur);
        }
    }

    #[test]
    fn small_forward_deltas_are_one_byte() {
        for d in 0..64u64 {
            assert_eq!(varint_len(encode_delta(100, 100 + d)), 1);
        }
    }

    #[test]
    fn dependent_own_rows_are_derived() {
        // Rows {x}, {y}, {x,y}: third = first + second.
        let own = vec![(0usize, rs(&[0])), (1, rs(&[1])), (2, rs(&[0, 1]))];
        let layout = PairLayout::build(vec![0, 1, 2], &own);
        assert_eq!(layout.num_explicit(), 2);
        assert_eq!(layout.num_derived(), 1);
        // Counters from atom counts (3 writes to x, 5 to y).
        let full = [3u64, 5, 8];
        let mut enc = WireEncoder::new(&layout);
        let mut dec = WireDecoder::new(&layout);
        let mut buf = Vec::new();
        enc.encode(&layout, &full, &mut buf);
        assert_eq!(dec.decode(&layout, &buf), Ok(vec![3, 5, 8]));
    }

    #[test]
    fn independent_rows_stay_explicit() {
        // {x,y} and {y,z} overlap but are independent.
        let own = vec![(0usize, rs(&[0, 1])), (1, rs(&[1, 2]))];
        let layout = PairLayout::build(vec![0, 1], &own);
        assert_eq!(layout.num_explicit(), 2);
        assert_eq!(layout.num_derived(), 0);
    }

    #[test]
    fn identical_rows_collapse_to_one() {
        // Clique-style: every outgoing edge carries the same registers.
        let own: Vec<(usize, RegSet)> = (0..4).map(|j| (j, rs(&[0, 1]))).collect();
        let layout = PairLayout::build(vec![0, 1, 2, 3], &own);
        assert_eq!(layout.num_explicit(), 1);
        assert_eq!(layout.num_derived(), 3);
        let full = [7u64, 7, 7, 7];
        let mut enc = WireEncoder::new(&layout);
        let mut dec = WireDecoder::new(&layout);
        let mut buf = Vec::new();
        let bytes = enc.encode(&layout, &full, &mut buf);
        assert_eq!(bytes, 1); // one varint delta
        assert_eq!(dec.decode(&layout, &buf), Ok(vec![7; 4]));
    }

    #[test]
    fn non_own_rows_never_derived() {
        // No own rows at all: everything explicit even if dependent.
        let layout = PairLayout::build(vec![0, 1, 2], &[]);
        assert_eq!(layout.num_explicit(), 3);
    }

    #[test]
    fn stream_deltas_shrink_repeat_frames() {
        let own = vec![(0usize, rs(&[0]))];
        let layout = PairLayout::build(vec![0, 1], &own);
        let mut enc = WireEncoder::new(&layout);
        let mut dec = WireDecoder::new(&layout);
        let mut buf = Vec::new();
        // First frame pays for the absolute values; later frames are
        // one byte per counter for small increments.
        enc.encode(&layout, &[1000, 2000], &mut buf);
        assert_eq!(dec.decode(&layout, &buf).unwrap(), vec![1000, 2000]);
        let bytes = enc.encode(&layout, &[1001, 2001], &mut buf);
        assert_eq!(bytes, 2);
        assert_eq!(dec.decode(&layout, &buf).unwrap(), vec![1001, 2001]);
    }

    #[test]
    fn decoder_rejects_malformed_frames() {
        let layout = PairLayout::identity(vec![0, 1]);
        let mut dec = WireDecoder::new(&layout);
        assert_eq!(
            dec.decode(&layout, &[0x00]),
            Err(DecodeError::BadVarint { offset: 1 })
        );
        let mut dec = WireDecoder::new(&layout);
        assert_eq!(
            dec.decode(&layout, &[0x00, 0x00, 0x00]),
            Err(DecodeError::TrailingBytes {
                consumed: 2,
                len: 3
            })
        );
    }

    #[test]
    fn inexact_derived_row_rejects_frame_transactionally() {
        // Regression: an unverified derived row claiming
        // `slice[1] = slice[0] / 2` used to be only debug-asserted, so a
        // release build silently shipped a corrupt counter. It must now
        // reject the frame and leave the stream state untouched.
        let bad = PairLayout::from_raw_parts(
            vec![0, 1],
            vec![0],
            vec![DerivedRow {
                index: 1,
                terms: vec![(0, 1)],
                den: 2,
            }],
        );
        let mut enc = WireEncoder::new(&bad);
        let mut dec = WireDecoder::new(&bad);
        let mut buf = Vec::new();
        // Odd explicit value: 3 / 2 is inexact.
        enc.encode(&bad, &[3, 0], &mut buf);
        let snapshot = dec.clone();
        assert_eq!(
            dec.decode(&bad, &buf),
            Err(DecodeError::InexactDerivedRow { index: 1 })
        );
        assert_eq!(dec, snapshot, "rejection must not advance stream state");
        // An exact frame on the same stream still decodes — against the
        // *original* state, proving the rejection was transactional.
        let mut enc = WireEncoder::new(&bad);
        enc.encode(&bad, &[4, 2], &mut buf);
        assert_eq!(dec.decode(&bad, &buf), Ok(vec![4, 2]));
        // The batch path takes the same checked route.
        let mut enc = WireEncoder::new(&bad);
        let mut dec = WireDecoder::new(&bad);
        let fulls: [&[u64]; 2] = [&[2, 1], &[3, 1]];
        enc.encode_batch(&bad, &fulls, &mut buf);
        let snapshot = dec.clone();
        assert_eq!(
            dec.decode_batch(&bad, &buf),
            Err(DecodeError::InexactDerivedRow { index: 1 })
        );
        assert_eq!(dec, snapshot);
    }

    #[test]
    fn verify_derived_matches_reconstruction() {
        let own = vec![(0usize, rs(&[0])), (1, rs(&[1])), (2, rs(&[0, 1]))];
        let layout = PairLayout::build(vec![0, 1, 2], &own);
        assert_eq!(layout.num_derived(), 1);
        // Values maintained by `advance` satisfy the relation.
        assert_eq!(layout.verify_derived(&[3, 5, 8]), Ok(()));
        // A slice that breaks the relation is caught.
        assert_eq!(
            layout.verify_derived(&[3, 5, 9]),
            Err(DecodeError::InexactDerivedRow { index: 2 })
        );
    }

    #[test]
    fn explicit_fallback_preserves_projection() {
        let own: Vec<(usize, RegSet)> = (0..3).map(|j| (j, rs(&[0]))).collect();
        let layout = PairLayout::build(vec![2, 0, 1], &own);
        assert!(layout.num_derived() > 0);
        let fallback = layout.to_explicit();
        assert_eq!(fallback.num_derived(), 0);
        assert_eq!(fallback.num_explicit(), fallback.common_len());
        let full = [5u64, 6, 7];
        assert_eq!(fallback.project(&full), layout.project(&full));
    }

    #[test]
    fn frame_primitives_match_stateful_streams() {
        // encode_frame/decode_frame with caller-managed state must agree
        // byte-for-byte with the WireEncoder/WireDecoder wrappers.
        let own = vec![(0usize, rs(&[0])), (1, rs(&[1])), (2, rs(&[0, 1]))];
        let layout = PairLayout::build(vec![0, 1, 2, 3], &own);
        let frames: [&[u64]; 3] = [&[3, 5, 8, 100], &[4, 5, 9, 100], &[4, 6, 10, 107]];
        let mut enc = WireEncoder::new(&layout);
        let mut dec = WireDecoder::new(&layout);
        let mut state = vec![0u64; layout.num_explicit()];
        let (mut oracle_buf, mut buf) = (Vec::new(), Vec::new());
        let mut next = Vec::new();
        for full in frames {
            enc.encode(&layout, full, &mut oracle_buf);
            buf.clear();
            let len = layout.encode_frame(&state, full, &mut buf, &mut next);
            assert_eq!(buf, oracle_buf);
            assert_eq!(len, buf.len());
            let mut pos = 0;
            let slice = layout
                .decode_frame(&state, &buf, &mut pos, &mut next)
                .unwrap();
            assert_eq!(pos, buf.len());
            assert_eq!(slice, dec.decode(&layout, &oracle_buf).unwrap());
            state.clear();
            state.extend_from_slice(&next);
        }
    }

    #[test]
    fn projection_selects_sender_positions() {
        let layout = PairLayout::identity(vec![3, 1]);
        assert_eq!(layout.project(&[10, 11, 12, 13]), vec![13, 11]);
    }

    #[test]
    fn empty_layout_round_trips() {
        let layout = PairLayout::build(vec![], &[]);
        assert_eq!(layout.common_len(), 0);
        let mut enc = WireEncoder::new(&layout);
        let mut dec = WireDecoder::new(&layout);
        let mut buf = Vec::new();
        assert_eq!(enc.encode(&layout, &[], &mut buf), 0);
        assert_eq!(dec.decode(&layout, &buf), Ok(vec![]));
    }

    #[test]
    fn batch_round_trip_matches_singletons() {
        let own = vec![(0usize, rs(&[0])), (1, rs(&[1])), (2, rs(&[0, 1]))];
        let layout = PairLayout::build(vec![0, 1, 2], &own);
        let frames: Vec<Vec<u64>> = vec![vec![3, 5, 8], vec![4, 5, 9], vec![4, 6, 10]];
        // Singleton oracle stream.
        let mut enc1 = WireEncoder::new(&layout);
        let mut dec1 = WireDecoder::new(&layout);
        let mut singles = Vec::new();
        let mut buf = Vec::new();
        for f in &frames {
            enc1.encode(&layout, f, &mut buf);
            singles.push(dec1.decode(&layout, &buf).unwrap());
        }
        // Batched stream over the same updates.
        let mut enc = WireEncoder::new(&layout);
        let mut dec = WireDecoder::new(&layout);
        let refs: Vec<&[u64]> = frames.iter().map(Vec::as_slice).collect();
        let bytes = enc.encode_batch(&layout, &refs, &mut buf);
        assert_eq!(bytes, buf.len());
        assert_eq!(dec.decode_batch(&layout, &buf).unwrap(), singles);
        // Encoder state matches: a follow-up singleton frame agrees.
        enc1.encode(&layout, &[5, 6, 11], &mut buf);
        let follow_single = dec1.decode(&layout, &buf).unwrap();
        enc.encode(&layout, &[5, 6, 11], &mut buf);
        assert_eq!(dec.decode(&layout, &buf).unwrap(), follow_single);
    }

    #[test]
    fn batch_intra_deltas_are_small() {
        // Consecutive updates on one pair bump one counter by 1 each:
        // after the first frame, every later update costs 1 byte/counter.
        let layout = PairLayout::identity(vec![0]);
        let mut enc = WireEncoder::new(&layout);
        let mut buf = Vec::new();
        let frames: Vec<Vec<u64>> = (0..8u64).map(|i| vec![1000 + i]).collect();
        let refs: Vec<&[u64]> = frames.iter().map(Vec::as_slice).collect();
        let bytes = enc.encode_batch(&layout, &refs, &mut buf);
        // count(1) + first delta (1000 → 2 bytes) + 7 × 1-byte deltas.
        assert_eq!(bytes, 1 + 2 + 7);
    }

    #[test]
    fn batch_decode_is_transactional() {
        let layout = PairLayout::identity(vec![0, 1]);
        let mut enc = WireEncoder::new(&layout);
        let mut dec = WireDecoder::new(&layout);
        let mut buf = Vec::new();
        let frames: Vec<Vec<u64>> = vec![vec![1, 2], vec![2, 3]];
        let refs: Vec<&[u64]> = frames.iter().map(Vec::as_slice).collect();
        enc.encode_batch(&layout, &refs, &mut buf);
        // Truncated: reject, stream state untouched.
        let snapshot = dec.clone();
        assert!(dec.decode_batch(&layout, &buf[..buf.len() - 1]).is_err());
        assert_eq!(dec, snapshot);
        // Trailing garbage: reject.
        let mut padded = buf.clone();
        padded.push(0);
        assert!(matches!(
            dec.decode_batch(&layout, &padded),
            Err(DecodeError::TrailingBytes { .. })
        ));
        assert_eq!(dec, snapshot);
        // Implausible count: reject without allocating.
        assert!(matches!(
            dec.decode_batch(&layout, &[0xff, 0xff, 0x7f]),
            Err(DecodeError::ImplausibleCount { .. })
        ));
        // The intact frame still decodes afterwards.
        assert_eq!(dec.decode_batch(&layout, &buf).unwrap(), frames);
    }

    #[test]
    fn empty_batch_and_empty_layout() {
        let layout = PairLayout::identity(vec![0]);
        let mut enc = WireEncoder::new(&layout);
        let mut dec = WireDecoder::new(&layout);
        let mut buf = Vec::new();
        assert_eq!(enc.encode_batch(&layout, &[], &mut buf), 1);
        assert_eq!(dec.decode_batch(&layout, &buf), Ok(vec![]));
        // A layout with no explicit counters still frames the count.
        let empty = PairLayout::build(vec![], &[]);
        let mut enc = WireEncoder::new(&empty);
        let mut dec = WireDecoder::new(&empty);
        let fulls: [&[u64]; 2] = [&[], &[]];
        enc.encode_batch(&empty, &fulls, &mut buf);
        assert_eq!(dec.decode_batch(&empty, &buf), Ok(vec![vec![], vec![]]));
    }

    #[test]
    fn nested_union_dependency_detected() {
        // Appendix D shape: {x}, {y}, {z}, {x,y,z}.
        let own = vec![
            (0usize, rs(&[0])),
            (1, rs(&[1])),
            (2, rs(&[2])),
            (3, rs(&[0, 1, 2])),
        ];
        let layout = PairLayout::build(vec![0, 1, 2, 3], &own);
        assert_eq!(layout.num_explicit(), 3);
        let full = [2u64, 3, 4, 9];
        let mut enc = WireEncoder::new(&layout);
        let mut dec = WireDecoder::new(&layout);
        let mut buf = Vec::new();
        enc.encode(&layout, &full, &mut buf);
        assert_eq!(dec.decode(&layout, &buf), Ok(full.to_vec()));
    }
}
