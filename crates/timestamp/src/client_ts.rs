//! Client-side timestamps for the client-server architecture
//! (Appendix E.5 of the paper).
//!
//! Each client `c` maintains a vector `μ_c` indexed by
//! `∪_{i ∈ R_c} Ê_i` — the union of the *augmented* timestamp graphs of
//! the replicas it may access. The operations implemented here are the
//! paper's:
//!
//! * predicate `J₁ = J₂`: a read/write request from `c` is served by
//!   replica `i` once `τ_i[e_ji] ≥ μ_c[e_ji]` for every incoming edge
//!   `e_ji ∈ Ê_i`;
//! * `advance(i, τ, c, μ, x)`: increment own outgoing `x`-edges, take
//!   `max(τ, μ)` elsewhere;
//! * `merge₁ = merge₂`: client folds the replica's `τ` into `μ` over `Ê_i`.
//!
//! Replica-to-replica update delivery (`J₃`, `merge₃`) reuses the
//! peer-to-peer [`TsRegistry`] operations over the
//! augmented graphs.

use crate::edge_ts::{EdgeTimestamp, TsRegistry};
use prcc_sharegraph::{
    AugmentedShareGraph, ClientId, EdgeId, RegisterId, ReplicaId, TimestampGraphs,
};
use std::collections::HashMap;
use std::fmt;

/// The timestamp `μ_c` of one client.
#[derive(Clone, PartialEq, Eq)]
pub struct ClientTimestamp {
    client: ClientId,
    values: Vec<u64>,
}

impl ClientTimestamp {
    /// The owning client.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// Counter values aligned with the client's sorted edge list.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Number of counters.
    pub fn num_counters(&self) -> usize {
        self.values.len()
    }

    /// Wire size in bytes (8 per counter).
    pub fn wire_size_bytes(&self) -> usize {
        self.values.len() * 8
    }
}

impl fmt::Debug for ClientTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClientTimestamp")
            .field("client", &self.client)
            .field("values", &self.values)
            .finish()
    }
}

#[derive(Debug)]
struct ClientIndex {
    edges: Vec<EdgeId>,
    /// Per accessible replica: `(pos in client vector, pos in replica
    /// vector)` for every edge of `Ê_i`, plus the subset that is incoming
    /// at that replica (used by `J₁`/`J₂`).
    per_replica: HashMap<ReplicaId, ReplicaView>,
}

#[derive(Debug)]
struct ReplicaView {
    common: Vec<(usize, usize)>,
    incoming: Vec<(usize, usize)>,
}

/// Operation table for client timestamps over an augmented share graph.
pub struct ClientTsRegistry {
    peer: TsRegistry,
    clients: HashMap<ClientId, ClientIndex>,
}

impl fmt::Debug for ClientTsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClientTsRegistry")
            .field("clients", &self.clients.len())
            .finish()
    }
}

impl ClientTsRegistry {
    /// Builds the registry: augmented timestamp graphs for all replicas
    /// plus per-client edge unions and index maps.
    pub fn new(aug: &AugmentedShareGraph) -> Self {
        let graphs: TimestampGraphs = aug.augmented_timestamp_graphs();
        let mut clients = HashMap::new();
        for (c, replicas) in aug.clients().clients() {
            let edges = aug.client_edge_set(*c, &graphs);
            let mut per_replica = HashMap::new();
            for &i in replicas {
                let gi = graphs.of(i);
                let mut common = Vec::new();
                let mut incoming = Vec::new();
                for (pos_r, &e) in gi.edges().iter().enumerate() {
                    let pos_c = edges.binary_search(&e).expect("Ê_i ⊆ client edges");
                    common.push((pos_c, pos_r));
                    if e.to == i {
                        incoming.push((pos_c, pos_r));
                    }
                }
                per_replica.insert(i, ReplicaView { common, incoming });
            }
            clients.insert(*c, ClientIndex { edges, per_replica });
        }
        ClientTsRegistry {
            peer: TsRegistry::new(aug.base(), graphs),
            clients,
        }
    }

    /// The peer-to-peer operation table over the **augmented** timestamp
    /// graphs — used for replica↔replica update delivery (`J₃`, `merge₃`)
    /// and for creating replica timestamps.
    pub fn peer(&self) -> &TsRegistry {
        &self.peer
    }

    /// A zero-initialized timestamp for client `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` was not assigned any replicas.
    pub fn new_client_timestamp(&self, c: ClientId) -> ClientTimestamp {
        let idx = self.clients.get(&c).expect("unknown client");
        ClientTimestamp {
            client: c,
            values: vec![0; idx.edges.len()],
        }
    }

    /// Predicate `J₁ = J₂`: replica `i` (with timestamp `tau`) may serve a
    /// request carrying client timestamp `mu` iff
    /// `τ[e_ji] ≥ μ[e_ji]` for every incoming `e_ji ∈ Ê_i`.
    pub fn request_ready(&self, tau: &EdgeTimestamp, mu: &ClientTimestamp) -> bool {
        let idx = &self.clients[&mu.client];
        let view = match idx.per_replica.get(&tau.replica()) {
            Some(v) => v,
            None => return false, // client may not access this replica
        };
        view.incoming
            .iter()
            .all(|&(pc, pr)| tau.values()[pr] >= mu.values[pc])
    }

    /// `advance(i, τ, c, μ, x, v)` (Appendix E.5): folds `μ` into `τ` and
    /// increments `i`'s outgoing `x`-edges. Mutates `tau` in place.
    pub fn advance_for_client(
        &self,
        tau: &mut EdgeTimestamp,
        mu: &ClientTimestamp,
        x: RegisterId,
        g: &prcc_sharegraph::ShareGraph,
    ) {
        let idx = &self.clients[&mu.client];
        let i = tau.replica();
        if let Some(view) = idx.per_replica.get(&i) {
            let gi = self.peer.graphs().of(i);
            // First the `max` branch for every edge except the ones to be
            // incremented; then the increments (which per the paper ignore μ).
            let mut bump = Vec::new();
            for &(pc, pr) in &view.common {
                let e = gi.edges()[pr];
                if e.from == i && g.edge_registers(e).contains(x) {
                    bump.push(pr);
                } else {
                    let m = mu.values[pc];
                    if m > tau.values()[pr] {
                        set_value(tau, pr, m);
                    }
                }
            }
            for pr in bump {
                let v = tau.values()[pr] + 1;
                set_value(tau, pr, v);
            }
        }
    }

    /// `merge₁ = merge₂`: the client folds replica `i`'s response
    /// timestamp into `μ` over `Ê_i`.
    pub fn merge_into_client(&self, mu: &mut ClientTimestamp, tau: &EdgeTimestamp) {
        let idx = &self.clients[&mu.client];
        if let Some(view) = idx.per_replica.get(&tau.replica()) {
            for &(pc, pr) in &view.common {
                mu.values[pc] = mu.values[pc].max(tau.values()[pr]);
            }
        }
    }

    /// The edge list a client's vector is indexed by.
    pub fn client_edges(&self, c: ClientId) -> &[EdgeId] {
        &self.clients[&c].edges
    }
}

/// Internal: poke a single counter. `EdgeTimestamp` deliberately hides
/// mutable access; the client-server advance needs it, so we go through a
/// crate-private accessor.
fn set_value(ts: &mut EdgeTimestamp, pos: usize, value: u64) {
    ts.set_value_internal(pos, value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::{topology, ClientAssignment};

    /// Path 0 — 1 — 2 (registers 0, 1); one client spans replicas 0 and 2.
    fn setup() -> (AugmentedShareGraph, ClientTsRegistry) {
        let g = topology::path(3);
        let mut clients = ClientAssignment::new(3);
        clients.assign(ClientId::new(0), [ReplicaId::new(0), ReplicaId::new(2)]);
        let aug = AugmentedShareGraph::new(g, clients);
        let reg = ClientTsRegistry::new(&aug);
        (aug, reg)
    }

    #[test]
    fn client_vector_covers_union_of_replica_graphs() {
        let (_aug, reg) = setup();
        let mu = reg.new_client_timestamp(ClientId::new(0));
        let edges = reg.client_edges(ClientId::new(0));
        assert_eq!(mu.num_counters(), edges.len());
        assert!(!edges.is_empty());
    }

    #[test]
    fn fresh_request_is_ready_everywhere() {
        let (_aug, reg) = setup();
        let mu = reg.new_client_timestamp(ClientId::new(0));
        for i in [0u32, 2] {
            let tau = reg.peer().new_timestamp(ReplicaId::new(i));
            assert!(reg.request_ready(&tau, &mu));
        }
    }

    #[test]
    fn client_propagates_dependency_between_replicas() {
        // Client writes x0 at replica 0, then reads/writes at replica 2.
        // Replica 2's own state doesn't contain the write, but the client's
        // μ records the counter on e_01; replica 2 only gates on its *own*
        // incoming edges, so the request is served — and the advance folds
        // the client's knowledge into replica 2's τ.
        let (aug, reg) = setup();
        let g = aug.base();
        let c = ClientId::new(0);
        let (r0, r2) = (ReplicaId::new(0), ReplicaId::new(2));

        let mut mu = reg.new_client_timestamp(c);
        let mut tau0 = reg.peer().new_timestamp(r0);

        assert!(reg.request_ready(&tau0, &mu));
        reg.advance_for_client(&mut tau0, &mu, RegisterId::new(0), g);
        reg.merge_into_client(&mut mu, &tau0);

        // μ now holds e_01's counter = 1.
        let e01 = EdgeId::new(r0, ReplicaId::new(1));
        let pos = reg
            .client_edges(c)
            .binary_search(&e01)
            .expect("client tracks e_01");
        assert_eq!(mu.values()[pos], 1);

        // Write at replica 2: served (no incoming dependency unmet) and τ_2
        // inherits the client's e_01 knowledge if Ê_2 tracks it.
        let mut tau2 = reg.peer().new_timestamp(r2);
        assert!(reg.request_ready(&tau2, &mu));
        reg.advance_for_client(&mut tau2, &mu, RegisterId::new(1), g);
        let g2 = reg.peer().graphs().of(r2);
        if let Some(p) = g2.position(e01) {
            assert_eq!(tau2.values()[p], 1, "τ_2 must inherit e_01");
        }
    }

    #[test]
    fn request_blocked_until_replica_catches_up() {
        // Client observed an update from replica 1 at... simulate: client μ
        // has e_10 = 1 (an incoming edge of replica 0). A fresh replica 0
        // must block the request until it applies that update.
        let (_aug, reg) = setup();
        let c = ClientId::new(0);
        let mut mu = reg.new_client_timestamp(c);
        let e10 = EdgeId::new(ReplicaId::new(1), ReplicaId::new(0));
        let pos = reg.client_edges(c).binary_search(&e10).unwrap();
        mu.values[pos] = 1;

        let tau0 = reg.peer().new_timestamp(ReplicaId::new(0));
        assert!(!reg.request_ready(&tau0, &mu));
    }

    #[test]
    fn unassigned_replica_rejects_requests() {
        let (_aug, reg) = setup();
        let mu = reg.new_client_timestamp(ClientId::new(0));
        // Replica 1 is not in R_c.
        let tau1 = reg.peer().new_timestamp(ReplicaId::new(1));
        assert!(!reg.request_ready(&tau1, &mu));
    }

    #[test]
    #[should_panic(expected = "unknown client")]
    fn unknown_client_panics() {
        let (_aug, reg) = setup();
        let _ = reg.new_client_timestamp(ClientId::new(7));
    }
}
