//! Timestamps for partially replicated causal consistency.
//!
//! Implements the metadata side of Xiang & Vaidya's algorithm:
//!
//! * [`EdgeTimestamp`] / [`TsRegistry`] — the edge-indexed vector
//!   timestamps of Section 3.3 with `advance`, `merge`, and the delivery
//!   predicate `J`;
//! * [`ClientTimestamp`] / [`ClientTsRegistry`] — the client-server
//!   extension of Appendix E.5 (`J₁`/`J₂`, `merge₁`/`merge₂`, client-aware
//!   `advance`);
//! * [`VectorClock`] — the classic length-`R` baseline used by
//!   full-replication systems (Lazy Replication) and by the
//!   dummy-register emulation of Appendix D;
//! * [`compress`] — Appendix D's timestamp compression (rank / atom
//!   analysis);
//! * [`bits`] — timestamp sizes in bits and the closed-form lower bounds
//!   of Section 4.
//!
//! # Examples
//!
//! ```
//! use prcc_sharegraph::{topology, TimestampGraphs, LoopConfig, ReplicaId, RegisterId};
//! use prcc_timestamp::TsRegistry;
//!
//! let g = topology::ring(4);
//! let graphs = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
//! let reg = TsRegistry::new(&g, graphs);
//! let mut t = reg.new_timestamp(ReplicaId::new(0));
//! reg.advance(&mut t, RegisterId::new(0));
//! assert_eq!(t.max_counter(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bits;
pub mod client_ts;
pub mod compress;
pub mod edge_ts;
pub mod vector_clock;
pub mod wire;

pub use client_ts::{ClientTimestamp, ClientTsRegistry};
pub use compress::{compress_replica, AtomBasis, CompressionReport};
pub use edge_ts::{EdgeTimestamp, JVerdict, TsRegistry};
pub use vector_clock::VectorClock;
pub use wire::{DecodeError, DerivedRow, PairLayout, WireDecoder, WireEncoder};
