//! Timestamp sizes in bits and the paper's closed-form lower bounds
//! (Section 4, "Implication").
//!
//! The lower-bound theorem (Theorem 15) bounds the *timestamp space size*
//! `σ^i(m)` by the chromatic number of a conflict graph; in special
//! topologies the bound has closed form and matches the algorithm's
//! timestamp exactly:
//!
//! * share graph a **tree**: `2·N_i·log m` bits for replica `i` with `N_i`
//!   neighbors;
//! * share graph a **cycle** of `n` replicas: `2n·log m` bits each;
//! * **full replication** (clique, identical edges): space `m^R`, i.e.
//!   `R·log m` bits — a classic vector clock.

/// Bits needed per counter when each replica issues at most `m` updates:
/// `⌈log₂(m + 1)⌉` (counters range over `0..=m`).
pub fn bits_per_counter(m: u64) -> u32 {
    64 - m.leading_zeros()
}

/// Size in bits of a timestamp with `counters` counters under update bound
/// `m`.
pub fn timestamp_bits(counters: usize, m: u64) -> u64 {
    counters as u64 * u64::from(bits_per_counter(m))
}

/// Lower bound for replica `i` when the share graph is a **tree**:
/// `2·N_i` counters of `log m` bits (Section 4).
pub fn tree_lower_bound_bits(neighbors: usize, m: u64) -> u64 {
    timestamp_bits(2 * neighbors, m)
}

/// Lower bound per replica when the share graph is a **cycle** of `n`
/// replicas: `2n` counters of `log m` bits (Section 4).
pub fn cycle_lower_bound_bits(n: usize, m: u64) -> u64 {
    timestamp_bits(2 * n, m)
}

/// Lower bound per replica under **full replication** with `r` replicas:
/// timestamp space `m^r` ⇒ `r·log m` bits (Section 4) — met by a vector
/// clock.
pub fn full_replication_lower_bound_bits(r: usize, m: u64) -> u64 {
    timestamp_bits(r, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_per_counter_boundaries() {
        assert_eq!(bits_per_counter(0), 0);
        assert_eq!(bits_per_counter(1), 1);
        assert_eq!(bits_per_counter(2), 2);
        assert_eq!(bits_per_counter(3), 2);
        assert_eq!(bits_per_counter(4), 3);
        assert_eq!(bits_per_counter(255), 8);
        assert_eq!(bits_per_counter(256), 9);
    }

    #[test]
    fn timestamp_bits_scales_linearly() {
        assert_eq!(timestamp_bits(10, 255), 80);
        assert_eq!(timestamp_bits(0, 1000), 0);
    }

    #[test]
    fn closed_forms() {
        // Tree with N_i = 3, m = 15: 2*3*4 = 24 bits.
        assert_eq!(tree_lower_bound_bits(3, 15), 24);
        // Cycle of 5, m = 15: 2*5*4 = 40 bits.
        assert_eq!(cycle_lower_bound_bits(5, 15), 40);
        // Full replication R = 4, m = 15: 4*4 = 16 bits.
        assert_eq!(full_replication_lower_bound_bits(4, 15), 16);
    }

    #[test]
    fn algorithm_matches_tree_and_cycle_bounds() {
        use prcc_sharegraph::{topology, LoopConfig, TimestampGraphs};
        let m = 100;
        // Tree (star): hub has N_0 leaves; our timestamp has 2·N_0 counters
        // — tight.
        let g = topology::star(4);
        let graphs = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
        let hub = graphs.of(prcc_sharegraph::ReplicaId::new(0));
        assert_eq!(timestamp_bits(hub.len(), m), tree_lower_bound_bits(4, m));
        // Cycle: 2n counters — tight.
        let g = topology::ring(6);
        let graphs = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
        for tg in graphs.iter() {
            assert_eq!(timestamp_bits(tg.len(), m), cycle_lower_bound_bits(6, m));
        }
    }
}
