//! Classic length-`R` vector clocks — the full-replication baseline.
//!
//! Lazy Replication (Ladin et al.) and classic causal broadcast track causality with
//! one counter per replica. Under *full* replication (or the dummy-register
//! emulation of Appendix D) this is both correct and optimal; under partial
//! replication it is what our edge-indexed timestamps are compared against
//! in experiments E4 and E10.

use prcc_sharegraph::ReplicaId;
use std::cmp::Ordering;
use std::fmt;

/// A vector clock with one counter per replica.
///
/// # Examples
///
/// ```
/// use prcc_timestamp::VectorClock;
/// use prcc_sharegraph::ReplicaId;
///
/// let mut a = VectorClock::new(3);
/// a.increment(ReplicaId::new(0));
/// let mut b = VectorClock::new(3);
/// b.merge(&a);
/// assert_eq!(b.get(ReplicaId::new(0)), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct VectorClock {
    values: Vec<u64>,
}

impl VectorClock {
    /// A zero clock over `replicas` replicas.
    pub fn new(replicas: usize) -> Self {
        VectorClock {
            values: vec![0; replicas],
        }
    }

    /// Reassembles a clock from raw per-replica values — the inverse of
    /// [`VectorClock::values`], used by transports that ship clocks
    /// across address spaces.
    pub fn from_values(values: Vec<u64>) -> Self {
        VectorClock { values }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the clock has no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The counter of replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: ReplicaId) -> u64 {
        self.values[i.index()]
    }

    /// Increments replica `i`'s own counter, returning the new value.
    pub fn increment(&mut self, i: ReplicaId) -> u64 {
        self.values[i.index()] += 1;
        self.values[i.index()]
    }

    /// Pointwise max with `other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn merge(&mut self, other: &VectorClock) {
        assert_eq!(self.values.len(), other.values.len(), "length mismatch");
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a = (*a).max(*b);
        }
    }

    /// The causal-broadcast delivery predicate: a message stamped `msg`
    /// from `sender` is deliverable at a replica whose clock is `self` iff
    /// `msg[sender] = self[sender] + 1` and `msg[j] ≤ self[j]` for all
    /// `j ≠ sender`.
    pub fn deliverable(&self, sender: ReplicaId, msg: &VectorClock) -> bool {
        assert_eq!(self.values.len(), msg.values.len(), "length mismatch");
        self.values.iter().enumerate().all(|(j, &mine)| {
            if j == sender.index() {
                msg.values[j] == mine + 1
            } else {
                msg.values[j] <= mine
            }
        })
    }

    /// Partial order on clocks: `Some(Less)` if `self` happened strictly
    /// before `other`, `Some(Equal)` if identical, `None` if concurrent.
    pub fn partial_cmp_causal(&self, other: &VectorClock) -> Option<Ordering> {
        assert_eq!(self.values.len(), other.values.len(), "length mismatch");
        let mut le = true;
        let mut ge = true;
        for (a, b) in self.values.iter().zip(&other.values) {
            if a < b {
                ge = false;
            }
            if a > b {
                le = false;
            }
        }
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }

    /// Raw counter slice.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Wire size in bytes (8 per counter, fixed layout).
    pub fn wire_size_bytes(&self) -> usize {
        self.values.len() * 8
    }

    /// Largest counter value.
    pub fn max_counter(&self) -> u64 {
        self.values.iter().copied().max().unwrap_or(0)
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VectorClock{:?}", self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn increment_and_get() {
        let mut vc = VectorClock::new(3);
        assert_eq!(vc.increment(r(1)), 1);
        assert_eq!(vc.increment(r(1)), 2);
        assert_eq!(vc.get(r(1)), 2);
        assert_eq!(vc.get(r(0)), 0);
    }

    #[test]
    fn merge_is_pointwise_max() {
        let mut a = VectorClock::new(3);
        a.increment(r(0));
        a.increment(r(0));
        let mut b = VectorClock::new(3);
        b.increment(r(2));
        a.merge(&b);
        assert_eq!(a.values(), &[2, 0, 1]);
    }

    #[test]
    fn delivery_predicate() {
        // r0 sends m1 (clock [1,0]) then m2 (clock [2,0]).
        let mut sender = VectorClock::new(2);
        sender.increment(r(0));
        let m1 = sender.clone();
        sender.increment(r(0));
        let m2 = sender.clone();

        let mut receiver = VectorClock::new(2);
        assert!(receiver.deliverable(r(0), &m1));
        assert!(!receiver.deliverable(r(0), &m2));
        receiver.merge(&m1);
        assert!(receiver.deliverable(r(0), &m2));
        assert!(!receiver.deliverable(r(0), &m1)); // duplicate rejected
    }

    #[test]
    fn transitive_dependency() {
        // r0 -> u1; r1 applies u1, issues u2; r2 must get u1 first.
        let mut c0 = VectorClock::new(3);
        c0.increment(r(0));
        let u1 = c0.clone();
        let mut c1 = VectorClock::new(3);
        c1.merge(&u1);
        c1.increment(r(1));
        let u2 = c1.clone();

        let c2 = VectorClock::new(3);
        assert!(!c2.deliverable(r(1), &u2));
        let mut c2b = c2.clone();
        c2b.merge(&u1);
        assert!(c2b.deliverable(r(1), &u2));
    }

    #[test]
    fn causal_partial_order() {
        let mut a = VectorClock::new(2);
        a.increment(r(0));
        let mut b = a.clone();
        b.increment(r(1));
        assert_eq!(a.partial_cmp_causal(&b), Some(Ordering::Less));
        assert_eq!(b.partial_cmp_causal(&a), Some(Ordering::Greater));
        assert_eq!(a.partial_cmp_causal(&a.clone()), Some(Ordering::Equal));
        let mut c = VectorClock::new(2);
        c.increment(r(1));
        assert_eq!(a.partial_cmp_causal(&c), None);
    }

    #[test]
    fn sizes() {
        let vc = VectorClock::new(7);
        assert_eq!(vc.wire_size_bytes(), 56);
        assert_eq!(vc.max_counter(), 0);
        assert!(!vc.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn merge_validates_length() {
        let mut a = VectorClock::new(2);
        a.merge(&VectorClock::new(3));
    }
}
