//! Edge-indexed vector timestamps — the algorithm of Section 3.3.
//!
//! Replica `i` keeps one integer counter per edge of its timestamp graph
//! `E_i`. The three operations are exactly the paper's:
//!
//! * `advance(i, τ_i, x)` — on a local write to `x`, increment `τ_i[e_ik]`
//!   for every outgoing edge `e_ik ∈ E_i` with `x ∈ X_ik`;
//! * `merge(i, τ_i, k, T)` — take the pointwise max over `E_i ∩ E_k`;
//! * predicate `J(i, τ_i, k, T)` — deliver an update from `k` iff
//!   `τ_i[e_ki] = T[e_ki] − 1` and `τ_i[e_ji] ≥ T[e_ji]` for every other
//!   common incoming edge `e_ji ∈ E_i ∩ E_k`.
//!
//! A [`TsRegistry`] precomputes, per ordered replica pair, the index maps
//! these operations need, so each operation is a linear scan over short
//! arrays.

use crate::wire::{varint_len, PairLayout};
use prcc_sharegraph::{EdgeId, RegSet, RegisterId, ReplicaId, ShareGraph, TimestampGraphs};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Verdict of the indexed delivery predicate `J`, with blocking cause.
///
/// Beyond the boolean `J`, the evaluation reports *why* an update is not
/// deliverable: the first unsatisfied requirement, as the local counter
/// slot (position in the receiver's `E_i` order) that must advance and
/// the value it must reach. The replica's dependency-counting wakeup
/// index parks blocked messages under that slot and re-examines them only
/// when a `merge` advances it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JVerdict {
    /// The update may be applied now.
    Ready,
    /// Blocked: deliverable once local counter `slot` reaches `needs`.
    Blocked {
        /// Position in the receiver's `E_i` edge order.
        slot: usize,
        /// Counter value that slot must reach before re-evaluating.
        needs: u64,
    },
    /// Never deliverable: the exactness condition `τ_i[e_ki] = T[e_ki]−1`
    /// has already been overshot (a duplicate of an applied update), or
    /// the sender shares no tracked edge with the receiver.
    Dead,
}

/// The edge-indexed timestamp of one replica: counters aligned with the
/// sorted edge list of that replica's timestamp graph.
#[derive(Clone, PartialEq, Eq)]
pub struct EdgeTimestamp {
    replica: ReplicaId,
    values: Vec<u64>,
}

impl EdgeTimestamp {
    /// Reassembles a timestamp from its owner and raw counter values
    /// (aligned with `E_i`'s sorted edge order) — the inverse of
    /// [`EdgeTimestamp::values`], used by transports that ship raw-mode
    /// timestamps across address spaces.
    pub fn from_parts(replica: ReplicaId, values: Vec<u64>) -> Self {
        EdgeTimestamp { replica, values }
    }

    /// The replica this timestamp belongs to.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// Counter values, aligned with `E_i`'s sorted edge order.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Number of counters (`|E_i|`).
    pub fn num_counters(&self) -> usize {
        self.values.len()
    }

    /// Wire size in bytes when the full timestamp is shipped in the fixed
    /// raw layout: one varint-free u64 per counter. This is what
    /// `WireMode::Raw` actually puts on the wire; the projected and
    /// compressed modes account their own (smaller) encoded sizes.
    pub fn wire_size_bytes(&self) -> usize {
        self.values.len() * 8
    }

    /// Wire size in bytes if the full timestamp were shipped as plain
    /// varints (no projection, no deltas) — the honest lower bound for a
    /// stateless raw encoding, reported alongside the fixed layout in the
    /// compression tables.
    pub fn encoded_size_bytes(&self) -> usize {
        self.values.iter().map(|&v| varint_len(v)).sum()
    }

    /// Largest counter value — determines the bits-per-counter needed.
    pub fn max_counter(&self) -> u64 {
        self.values.iter().copied().max().unwrap_or(0)
    }

    /// Crate-internal counter mutation (used by the client-server
    /// `advance`, which must write through positions computed against a
    /// client index).
    pub(crate) fn set_value_internal(&mut self, pos: usize, value: u64) {
        self.values[pos] = value;
    }
}

impl fmt::Debug for EdgeTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EdgeTimestamp")
            .field("replica", &self.replica)
            .field("values", &self.values)
            .finish()
    }
}

/// Per-replica index: outgoing edges with their register sets (for
/// `advance`).
#[derive(Debug)]
struct ReplicaOps {
    /// `(counter position, registers shared on that edge)` for each
    /// outgoing edge `e_ik ∈ E_i`.
    outgoing: Vec<(usize, RegSet)>,
}

/// Precomputed maps for the ordered pair `(receiver i, sender k)`.
#[derive(Debug)]
struct PairOps {
    /// Positions `(in E_i, in E_k)` of every common edge `E_i ∩ E_k`.
    common: Vec<(usize, usize)>,
    /// Positions of `e_ki` in both graphs, if common.
    e_ki: Option<(usize, usize)>,
    /// Positions of common incoming edges `e_ji` with `j ≠ k`.
    incoming_other: Vec<(usize, usize)>,
    /// Index of `e_ki` into the common slice (wire projection order).
    e_ki_slice: Option<usize>,
    /// Indices of the `incoming_other` edges into the common slice.
    incoming_other_slice: Vec<usize>,
}

/// Factory and operation table for edge-indexed timestamps over a fixed
/// set of timestamp graphs.
///
/// # Examples
///
/// ```
/// use prcc_sharegraph::{topology, TimestampGraphs, LoopConfig, ReplicaId, RegisterId};
/// use prcc_timestamp::TsRegistry;
///
/// let g = topology::ring(4);
/// let graphs = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
/// let reg = TsRegistry::new(&g, graphs);
///
/// let r0 = ReplicaId::new(0);
/// let r1 = ReplicaId::new(1);
/// let mut t0 = reg.new_timestamp(r0);
/// // Replica 0 writes register 0, shared with replica 1.
/// reg.advance(&mut t0, RegisterId::new(0));
/// // Replica 1 can deliver it immediately…
/// let t1 = reg.new_timestamp(r1);
/// assert!(reg.ready(&t1, r0, &t0));
/// ```
pub struct TsRegistry {
    graphs: Arc<TimestampGraphs>,
    replica_ops: Vec<ReplicaOps>,
    /// Dense ordered-pair index: entry `i * n + k` holds the maps for
    /// `(receiver i, sender k)`. Every ordered pair is precomputed, so
    /// predicate and merge evaluation never re-intersects `E_i ∩ E_k` —
    /// including the non-adjacent pairs the client-server protocol
    /// relays between (formerly an on-the-fly rebuild per call).
    pair_ops: Vec<Option<PairOps>>,
    /// Dense ordered-pair index of negotiated wire layouts: entry
    /// `i * n + k` is the layout the sender `k` uses toward receiver `i`
    /// (projection to `E_i ∩ E_k` plus the derived-row compression of
    /// Section 5). Built eagerly so the hot send path only clones `Arc`s.
    wire_layouts: Vec<Option<Arc<PairLayout>>>,
    num_replicas: usize,
}

impl fmt::Debug for TsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TsRegistry")
            .field("replicas", &self.replica_ops.len())
            .field(
                "pairs",
                &self.pair_ops.iter().filter(|p| p.is_some()).count(),
            )
            .finish()
    }
}

impl TsRegistry {
    /// Builds the registry for `graphs` over share graph `g`.
    ///
    /// Pair maps are precomputed for **every** ordered pair of replicas
    /// (DESIGN §6's "predicate `J` indexing"): each [`TsRegistry::ready`]
    /// / [`TsRegistry::merge`] call walks a fixed precomputed slice of
    /// counter positions. The scan-based alternative that re-intersects
    /// `E_i ∩ E_k` per evaluation survives as [`TsRegistry::ready_scan`],
    /// the ablation oracle.
    pub fn new(g: &ShareGraph, graphs: TimestampGraphs) -> Self {
        let graphs = Arc::new(graphs);
        let mut replica_ops = Vec::with_capacity(graphs.len());
        for tg in graphs.iter() {
            let outgoing = tg
                .outgoing()
                .map(|e| {
                    let pos = tg.position(e).expect("edge from own graph");
                    (pos, g.edge_registers(e).clone())
                })
                .collect();
            replica_ops.push(ReplicaOps { outgoing });
        }
        let n = graphs.len();
        let mut pair_ops = Vec::with_capacity(n * n);
        let mut wire_layouts = Vec::with_capacity(n * n);
        // Structurally identical layouts (every pair of a full-replication
        // clique, many pairs of symmetric placements) share one `Arc`:
        // downstream fan-out grouping detects "same layout" by pointer
        // compare, and the derived-row solutions are solved once, not once
        // per pair.
        let mut canon: HashMap<PairLayout, Arc<PairLayout>> = HashMap::new();
        for i in 0..n {
            for k in 0..n {
                if i == k {
                    pair_ops.push(None);
                    wire_layouts.push(None);
                } else {
                    let (ri, rk) = (ReplicaId::new(i as u32), ReplicaId::new(k as u32));
                    pair_ops.push(Some(Self::build_pair(&graphs, ri, rk)));
                    let layout = Self::build_layout(g, &graphs, ri, rk);
                    let shared = canon
                        .entry(layout)
                        .or_insert_with_key(|l| Arc::new(l.clone()));
                    wire_layouts.push(Some(Arc::clone(shared)));
                }
            }
        }
        TsRegistry {
            graphs,
            replica_ops,
            pair_ops,
            wire_layouts,
            num_replicas: n,
        }
    }

    /// Negotiates the wire layout for `(receiver i, sender k)`: common
    /// slice in the same order as [`Self::build_pair`]'s `common`, with
    /// the sender's own outgoing rows offered for derived-row
    /// compression.
    fn build_layout(
        g: &ShareGraph,
        graphs: &TimestampGraphs,
        i: ReplicaId,
        k: ReplicaId,
    ) -> PairLayout {
        let gi = graphs.of(i);
        let gk = graphs.of(k);
        let mut sender_positions = Vec::new();
        let mut own_rows = Vec::new();
        for e in gi.intersection(gk) {
            let slice_idx = sender_positions.len();
            sender_positions.push(gk.position(e).unwrap());
            if e.from == k {
                own_rows.push((slice_idx, g.edge_registers(e).clone()));
            }
        }
        PairLayout::build(sender_positions, &own_rows)
    }

    /// The precomputed maps for `(receiver, sender)`.
    ///
    /// # Panics
    ///
    /// Panics if `receiver == sender` or either id is out of range.
    fn pair(&self, receiver: ReplicaId, sender: ReplicaId) -> &PairOps {
        self.pair_ops[receiver.index() * self.num_replicas + sender.index()]
            .as_ref()
            .expect("sender must differ from receiver")
    }

    fn build_pair(graphs: &TimestampGraphs, i: ReplicaId, k: ReplicaId) -> PairOps {
        let gi = graphs.of(i);
        let gk = graphs.of(k);
        let mut common = Vec::new();
        let mut e_ki = None;
        let mut e_ki_slice = None;
        let mut incoming_other = Vec::new();
        let mut incoming_other_slice = Vec::new();
        for e in gi.intersection(gk) {
            let pi = gi.position(e).unwrap();
            let pk = gk.position(e).unwrap();
            let slice_idx = common.len();
            common.push((pi, pk));
            if e == EdgeId::new(k, i) {
                e_ki = Some((pi, pk));
                e_ki_slice = Some(slice_idx);
            } else if e.to == i {
                incoming_other.push((pi, pk));
                incoming_other_slice.push(slice_idx);
            }
        }
        PairOps {
            common,
            e_ki,
            incoming_other,
            e_ki_slice,
            incoming_other_slice,
        }
    }

    /// The timestamp graphs the registry serves.
    pub fn graphs(&self) -> &TimestampGraphs {
        &self.graphs
    }

    /// A zero-initialized timestamp for replica `i`.
    pub fn new_timestamp(&self, i: ReplicaId) -> EdgeTimestamp {
        EdgeTimestamp {
            replica: i,
            values: vec![0; self.graphs.of(i).len()],
        }
    }

    /// `advance` (Section 3.3): applied when replica `ts.replica()` writes
    /// register `x`. Increments counters of outgoing edges whose shared
    /// set contains `x`. Returns the number of counters incremented.
    pub fn advance(&self, ts: &mut EdgeTimestamp, x: RegisterId) -> usize {
        let mut bumped = 0;
        for (pos, regs) in &self.replica_ops[ts.replica.index()].outgoing {
            if regs.contains(x) {
                ts.values[*pos] += 1;
                bumped += 1;
            }
        }
        bumped
    }

    /// `merge` (Section 3.3): pointwise max over `E_i ∩ E_k`, leaving
    /// other counters unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `incoming` does not belong to `sender`'s graph shape.
    pub fn merge(&self, ts: &mut EdgeTimestamp, sender: ReplicaId, incoming: &EdgeTimestamp) {
        let mut advanced = Vec::new();
        self.merge_report(ts, sender, incoming, &mut advanced);
    }

    /// `merge` that additionally reports which local counters advanced:
    /// appends `(slot, new_value)` for every position of `E_i` whose
    /// counter strictly increased. This is the signal the
    /// dependency-counting wakeup index consumes — a parked message is
    /// woken iff one of its blocking counters advanced.
    ///
    /// # Panics
    ///
    /// Panics if `incoming` does not belong to `sender`'s graph shape.
    pub fn merge_report(
        &self,
        ts: &mut EdgeTimestamp,
        sender: ReplicaId,
        incoming: &EdgeTimestamp,
        advanced: &mut Vec<(usize, u64)>,
    ) {
        assert_eq!(incoming.replica, sender, "timestamp/sender mismatch");
        assert_eq!(
            incoming.values.len(),
            self.graphs.of(sender).len(),
            "timestamp shape mismatch"
        );
        for &(pi, pk) in &self.pair(ts.replica, sender).common {
            let new = incoming.values[pk];
            if new > ts.values[pi] {
                ts.values[pi] = new;
                advanced.push((pi, new));
            }
        }
    }

    /// Predicate `J(i, τ_i, k, T)` (Section 3.3): `true` iff the update
    /// carrying `incoming` (sent by `sender`) may be applied at `ts`'s
    /// replica now.
    pub fn ready(&self, ts: &EdgeTimestamp, sender: ReplicaId, incoming: &EdgeTimestamp) -> bool {
        self.ready_check(ts, sender, incoming) == JVerdict::Ready
    }

    /// Indexed predicate `J` with blocking diagnosis: evaluates the same
    /// conditions as [`TsRegistry::ready`], and on failure reports the
    /// *first* unsatisfied requirement as the local counter slot and the
    /// value it must reach (or [`JVerdict::Dead`] when no future merge
    /// can satisfy the predicate).
    pub fn ready_check(
        &self,
        ts: &EdgeTimestamp,
        sender: ReplicaId,
        incoming: &EdgeTimestamp,
    ) -> JVerdict {
        let pair = self.pair(ts.replica, sender);
        // τ_i[e_ki] = T[e_ki] − 1 …
        match pair.e_ki {
            Some((pi, pk)) => {
                if incoming.values[pk] == 0 {
                    // A zero-count stamp on e_ki can never satisfy the
                    // exactness condition (τ_i counters never go negative).
                    return JVerdict::Dead;
                }
                let needed = incoming.values[pk] - 1;
                if ts.values[pi] < needed {
                    return JVerdict::Blocked {
                        slot: pi,
                        needs: needed,
                    };
                }
                if ts.values[pi] > needed {
                    // Already past the update's slot: a duplicate of an
                    // applied update can never satisfy the exactness
                    // condition again.
                    return JVerdict::Dead;
                }
            }
            None => {
                // e_ki not tracked in common: sender shares no register
                // with us — the peer-to-peer protocol never sends such
                // updates; be conservative.
                return JVerdict::Dead;
            }
        }
        // … and τ_i[e_ji] ≥ T[e_ji] for each common e_ji, j ≠ k.
        for &(pi, pk) in &pair.incoming_other {
            if ts.values[pi] < incoming.values[pk] {
                return JVerdict::Blocked {
                    slot: pi,
                    needs: incoming.values[pk],
                };
            }
        }
        JVerdict::Ready
    }

    /// The scan-based predicate `J` (ablation oracle): recomputes the
    /// `E_i ∩ E_k` intersection and both position maps on every call,
    /// exactly what evaluation cost before the registry indexed all
    /// ordered pairs. Kept for differential testing and the
    /// `predicate_eval` criterion bench; never used on the hot path.
    pub fn ready_scan(
        &self,
        ts: &EdgeTimestamp,
        sender: ReplicaId,
        incoming: &EdgeTimestamp,
    ) -> bool {
        let pair = Self::build_pair(&self.graphs, ts.replica, sender);
        match pair.e_ki {
            Some((pi, pk)) => {
                if ts.values[pi] + 1 != incoming.values[pk] {
                    return false;
                }
            }
            None => return false,
        }
        pair.incoming_other
            .iter()
            .all(|&(pi, pk)| ts.values[pi] >= incoming.values[pk])
    }

    /// The counter value for edge `e` in `ts`, if tracked.
    pub fn counter(&self, ts: &EdgeTimestamp, e: EdgeId) -> Option<u64> {
        self.graphs.of(ts.replica).position(e).map(|p| ts.values[p])
    }

    /// The negotiated wire layout the sender uses toward `receiver`
    /// (shared, cached at registry construction).
    ///
    /// # Panics
    ///
    /// Panics if `receiver == sender` or either id is out of range.
    pub fn wire_layout(&self, receiver: ReplicaId, sender: ReplicaId) -> Arc<PairLayout> {
        self.wire_layouts[receiver.index() * self.num_replicas + sender.index()]
            .clone()
            .expect("sender must differ from receiver")
    }

    /// Re-derives the `(receiver, sender)` wire layout from scratch,
    /// bypassing the cache built at construction. The oracle for the
    /// layout-cache invariance property: a cached layout must be
    /// indistinguishable (partition and frames) from a fresh derivation.
    /// `g` must be the share graph the registry was built from.
    ///
    /// # Panics
    ///
    /// Panics if `receiver == sender` or either id is out of range.
    pub fn derive_wire_layout(
        &self,
        g: &ShareGraph,
        receiver: ReplicaId,
        sender: ReplicaId,
    ) -> PairLayout {
        assert_ne!(receiver, sender, "sender must differ from receiver");
        Self::build_layout(g, &self.graphs, receiver, sender)
    }

    /// [`TsRegistry::merge_report`] over a **projected** incoming slice:
    /// `values[j]` is the counter of the `j`-th common edge of
    /// `(receiver, sender)` in pair-slice order — exactly what
    /// [`crate::wire::WireDecoder::decode`] reconstructs.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not have the pair's common-slice length.
    pub fn merge_projected_report(
        &self,
        ts: &mut EdgeTimestamp,
        sender: ReplicaId,
        values: &[u64],
        advanced: &mut Vec<(usize, u64)>,
    ) {
        let pair = self.pair(ts.replica, sender);
        assert_eq!(values.len(), pair.common.len(), "projected slice shape");
        for (j, &(pi, _)) in pair.common.iter().enumerate() {
            let new = values[j];
            if new > ts.values[pi] {
                ts.values[pi] = new;
                advanced.push((pi, new));
            }
        }
    }

    /// [`TsRegistry::merge`] over a projected incoming slice.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not have the pair's common-slice length.
    pub fn merge_projected(&self, ts: &mut EdgeTimestamp, sender: ReplicaId, values: &[u64]) {
        let mut advanced = Vec::new();
        self.merge_projected_report(ts, sender, values, &mut advanced);
    }

    /// [`TsRegistry::ready_check`] over a projected incoming slice: the
    /// predicate `J` only ever reads common-edge counters, so the
    /// projection is lossless for it by construction.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not have the pair's common-slice length.
    pub fn ready_check_projected(
        &self,
        ts: &EdgeTimestamp,
        sender: ReplicaId,
        values: &[u64],
    ) -> JVerdict {
        let pair = self.pair(ts.replica, sender);
        assert_eq!(values.len(), pair.common.len(), "projected slice shape");
        match pair.e_ki_slice {
            Some(j) => {
                let pi = pair.e_ki.expect("slice index implies positions").0;
                if values[j] == 0 {
                    return JVerdict::Dead;
                }
                let needed = values[j] - 1;
                if ts.values[pi] < needed {
                    return JVerdict::Blocked {
                        slot: pi,
                        needs: needed,
                    };
                }
                if ts.values[pi] > needed {
                    return JVerdict::Dead;
                }
            }
            None => return JVerdict::Dead,
        }
        for (&j, &(pi, _)) in pair
            .incoming_other_slice
            .iter()
            .zip(pair.incoming_other.iter())
        {
            if ts.values[pi] < values[j] {
                return JVerdict::Blocked {
                    slot: pi,
                    needs: values[j],
                };
            }
        }
        JVerdict::Ready
    }

    /// Boolean form of [`TsRegistry::ready_check_projected`].
    ///
    /// # Panics
    ///
    /// Panics if `values` does not have the pair's common-slice length.
    pub fn ready_projected(&self, ts: &EdgeTimestamp, sender: ReplicaId, values: &[u64]) -> bool {
        self.ready_check_projected(ts, sender, values) == JVerdict::Ready
    }

    /// Batched predicate `J`: `true` iff **all** of `stamps` — the
    /// timestamps of `k` consecutive updates on the `(sender → receiver)`
    /// pair stream, in send order — are deliverable as one in-order run.
    ///
    /// One evaluation replaces `k`: along a single pair stream the
    /// sender's `e_ki` counter rises by exactly 1 per update, so the run
    /// is wholly deliverable iff the *first* stamp satisfies the exactness
    /// condition, the `e_ki` values are contiguous, and the receiver's
    /// counters already dominate the *last* stamp's other common incoming
    /// edges. (Merging update `m` gives `τ_i[e_ki] = T_m[e_ki]`, which is
    /// exactness for `m+1` by contiguity; sender stamps are pointwise
    /// monotone along the stream, so the last stamp's `≥` conditions imply
    /// every earlier one's, and merges only raise `τ_i`.) After applying
    /// the run, merging only the last stamp reproduces the state of `k`
    /// sequential merges — pointwise max over a monotone chain.
    ///
    /// `false` means the batch is not deliverable *as a unit* (callers
    /// fall back to per-message evaluation); it makes no claim about
    /// individual members.
    pub fn batch_ready(
        &self,
        ts: &EdgeTimestamp,
        sender: ReplicaId,
        stamps: &[&EdgeTimestamp],
    ) -> bool {
        let pair = self.pair(ts.replica, sender);
        let Some((&first, rest)) = stamps.split_first() else {
            return false;
        };
        let Some((pi, pk)) = pair.e_ki else {
            return false;
        };
        debug_assert!(
            stamps.windows(2).all(|w| pair
                .common
                .iter()
                .all(|&(_, c)| w[0].values[c] <= w[1].values[c])),
            "batch stamps must be monotone along the pair stream"
        );
        if ts.values[pi] + 1 != first.values[pk] {
            return false;
        }
        let mut prev = first.values[pk];
        for s in rest {
            if s.values[pk] != prev + 1 {
                return false;
            }
            prev = s.values[pk];
        }
        let last = stamps[stamps.len() - 1];
        pair.incoming_other
            .iter()
            .all(|&(pi2, pk2)| ts.values[pi2] >= last.values[pk2])
    }

    /// [`TsRegistry::batch_ready`] over projected incoming slices (see
    /// [`TsRegistry::ready_check_projected`] for the slice convention).
    ///
    /// # Panics
    ///
    /// Panics if any slice does not have the pair's common-slice length.
    pub fn batch_ready_projected(
        &self,
        ts: &EdgeTimestamp,
        sender: ReplicaId,
        slices: &[&[u64]],
    ) -> bool {
        let pair = self.pair(ts.replica, sender);
        let Some((&first, rest)) = slices.split_first() else {
            return false;
        };
        let Some(j) = pair.e_ki_slice else {
            return false;
        };
        for s in slices {
            assert_eq!(s.len(), pair.common.len(), "projected slice shape");
        }
        let pi = pair.e_ki.expect("slice index implies positions").0;
        if ts.values[pi] + 1 != first[j] {
            return false;
        }
        let mut prev = first[j];
        for s in rest {
            if s[j] != prev + 1 {
                return false;
            }
            prev = s[j];
        }
        let last = slices[slices.len() - 1];
        pair.incoming_other_slice
            .iter()
            .zip(pair.incoming_other.iter())
            .all(|(&sj, &(pi2, _))| ts.values[pi2] >= last[sj])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::{topology, LoopConfig};

    fn registry(g: &ShareGraph) -> TsRegistry {
        TsRegistry::new(g, TimestampGraphs::build(g, LoopConfig::EXHAUSTIVE))
    }

    #[test]
    fn advance_bumps_only_matching_outgoing_edges() {
        let g = topology::ring(4);
        let reg = registry(&g);
        let r0 = ReplicaId::new(0);
        let mut t = reg.new_timestamp(r0);
        // Register 0 is shared by replicas 0 and 1 only.
        let bumped = reg.advance(&mut t, RegisterId::new(0));
        assert_eq!(bumped, 1);
        assert_eq!(reg.counter(&t, EdgeId::new(r0, ReplicaId::new(1))), Some(1));
        assert_eq!(reg.counter(&t, EdgeId::new(r0, ReplicaId::new(3))), Some(0));
    }

    #[test]
    fn advance_multi_recipient_register() {
        // Register 0 shared by replicas 0,1,2 (triangle).
        let g = ShareGraph::new(
            prcc_sharegraph::Placement::builder(3)
                .share(0, [0, 1, 2])
                .build(),
        );
        let reg = registry(&g);
        let mut t = reg.new_timestamp(ReplicaId::new(0));
        assert_eq!(reg.advance(&mut t, RegisterId::new(0)), 2);
    }

    #[test]
    fn fifo_predicate_from_single_sender() {
        let g = topology::path(2);
        let reg = registry(&g);
        let (r0, r1) = (ReplicaId::new(0), ReplicaId::new(1));
        let mut t0 = reg.new_timestamp(r0);
        let t1 = reg.new_timestamp(r1);

        reg.advance(&mut t0, RegisterId::new(0));
        let first = t0.clone();
        reg.advance(&mut t0, RegisterId::new(0));
        let second = t0.clone();

        // Second update not deliverable before first.
        assert!(!reg.ready(&t1, r0, &second));
        assert!(reg.ready(&t1, r0, &first));

        let mut t1m = t1.clone();
        reg.merge(&mut t1m, r0, &first);
        assert!(reg.ready(&t1m, r0, &second));
        // Re-delivery of the first is rejected after merge.
        assert!(!reg.ready(&t1m, r0, &first));
    }

    #[test]
    fn transitive_dependency_blocks_delivery() {
        // Triangle sharing one register: classic causal-broadcast scenario.
        // r0 writes u1 -> r1 applies it, writes u2. r2 must apply u1
        // before u2.
        let g = ShareGraph::new(
            prcc_sharegraph::Placement::builder(3)
                .share(0, [0, 1, 2])
                .build(),
        );
        let reg = registry(&g);
        let (r0, r1, r2) = (ReplicaId::new(0), ReplicaId::new(1), ReplicaId::new(2));
        let mut t0 = reg.new_timestamp(r0);
        let mut t1 = reg.new_timestamp(r1);
        let t2 = reg.new_timestamp(r2);

        reg.advance(&mut t0, RegisterId::new(0));
        let u1 = t0.clone();

        assert!(reg.ready(&t1, r0, &u1));
        reg.merge(&mut t1, r0, &u1);
        reg.advance(&mut t1, RegisterId::new(0));
        let u2 = t1.clone();

        // At r2: u2 before u1 must be blocked.
        assert!(!reg.ready(&t2, r1, &u2));
        assert!(reg.ready(&t2, r0, &u1));
        let mut t2m = t2.clone();
        reg.merge(&mut t2m, r0, &u1);
        assert!(reg.ready(&t2m, r1, &u2));
    }

    #[test]
    fn merge_ignores_uncommon_edges() {
        let g = topology::path(3);
        let reg = registry(&g);
        let (r0, r1) = (ReplicaId::new(0), ReplicaId::new(1));
        let mut t1 = reg.new_timestamp(r1);
        // Bump r1's counter toward r2 — r0 does not track e_12 (path has no
        // loops), so merging t1 into t0 must not disturb t0's counters for
        // its own edges.
        reg.advance(&mut t1, RegisterId::new(1)); // register 1 shared r1-r2
        let mut t0 = reg.new_timestamp(r0);
        reg.merge(&mut t0, r1, &t1);
        assert!(t0.values().iter().all(|&v| v == 0));
    }

    #[test]
    fn batch_ready_matches_sequential_evaluation() {
        let g = topology::path(2);
        let reg = registry(&g);
        let (r0, r1) = (ReplicaId::new(0), ReplicaId::new(1));
        let mut t0 = reg.new_timestamp(r0);
        let stamps: Vec<EdgeTimestamp> = (0..4)
            .map(|_| {
                reg.advance(&mut t0, RegisterId::new(0));
                t0.clone()
            })
            .collect();
        let refs: Vec<&EdgeTimestamp> = stamps.iter().collect();
        let t1 = reg.new_timestamp(r1);
        // The whole run is deliverable from zero…
        assert!(reg.batch_ready(&t1, r0, &refs));
        // …but not a suffix that skips the first update.
        assert!(!reg.batch_ready(&t1, r0, &refs[1..]));
        // Merging only the last stamp equals four sequential merges.
        let mut batched = t1.clone();
        reg.merge(&mut batched, r0, refs[3]);
        let mut seq = t1.clone();
        for s in &refs {
            assert!(reg.ready(&seq, r0, s));
            reg.merge(&mut seq, r0, s);
        }
        assert_eq!(batched, seq);
        // Empty batches are never "ready".
        assert!(!reg.batch_ready(&t1, r0, &[]));
    }

    #[test]
    fn batch_ready_rejects_non_contiguous_runs() {
        let g = topology::path(2);
        let reg = registry(&g);
        let (r0, r1) = (ReplicaId::new(0), ReplicaId::new(1));
        let mut t0 = reg.new_timestamp(r0);
        let mut stamps = Vec::new();
        for _ in 0..3 {
            reg.advance(&mut t0, RegisterId::new(0));
            stamps.push(t0.clone());
        }
        let t1 = reg.new_timestamp(r1);
        // A gap in the middle breaks the run.
        assert!(!reg.batch_ready(&t1, r0, &[&stamps[0], &stamps[2]]));
    }

    #[test]
    fn batch_ready_respects_transitive_dependencies() {
        // Triangle: r1's updates depend on r0's; r2 holds a batch from r1.
        let g = ShareGraph::new(
            prcc_sharegraph::Placement::builder(3)
                .share(0, [0, 1, 2])
                .build(),
        );
        let reg = registry(&g);
        let (r0, r1, r2) = (ReplicaId::new(0), ReplicaId::new(1), ReplicaId::new(2));
        let mut t0 = reg.new_timestamp(r0);
        reg.advance(&mut t0, RegisterId::new(0));
        let u1 = t0.clone();
        let mut t1 = reg.new_timestamp(r1);
        reg.merge(&mut t1, r0, &u1);
        reg.advance(&mut t1, RegisterId::new(0));
        let u2a = t1.clone();
        reg.advance(&mut t1, RegisterId::new(0));
        let u2b = t1.clone();
        let t2 = reg.new_timestamp(r2);
        // Blocked until r2 merges u1; then the whole batch is ready.
        assert!(!reg.batch_ready(&t2, r1, &[&u2a, &u2b]));
        let mut t2m = t2.clone();
        reg.merge(&mut t2m, r0, &u1);
        assert!(reg.batch_ready(&t2m, r1, &[&u2a, &u2b]));
    }

    #[test]
    fn batch_ready_projected_agrees_with_full() {
        let g = topology::ring(4);
        let reg = registry(&g);
        let (r0, r1) = (ReplicaId::new(0), ReplicaId::new(1));
        let layout = reg.wire_layout(r1, r0);
        let mut t0 = reg.new_timestamp(r0);
        let mut stamps = Vec::new();
        for _ in 0..3 {
            reg.advance(&mut t0, RegisterId::new(0));
            stamps.push(t0.clone());
        }
        let slices: Vec<Vec<u64>> = stamps.iter().map(|s| layout.project(s.values())).collect();
        let t1 = reg.new_timestamp(r1);
        let full_refs: Vec<&EdgeTimestamp> = stamps.iter().collect();
        let slice_refs: Vec<&[u64]> = slices.iter().map(Vec::as_slice).collect();
        assert_eq!(
            reg.batch_ready(&t1, r0, &full_refs),
            reg.batch_ready_projected(&t1, r0, &slice_refs)
        );
        assert!(reg.batch_ready_projected(&t1, r0, &slice_refs));
        assert!(!reg.batch_ready_projected(&t1, r0, &slice_refs[1..]));
        assert!(!reg.batch_ready_projected(&t1, r0, &[]));
    }

    #[test]
    fn ready_requires_exactly_next_from_sender() {
        let g = topology::path(2);
        let reg = registry(&g);
        let (r0, r1) = (ReplicaId::new(0), ReplicaId::new(1));
        let mut t0 = reg.new_timestamp(r0);
        for _ in 0..3 {
            reg.advance(&mut t0, RegisterId::new(0));
        }
        let third = t0.clone();
        let t1 = reg.new_timestamp(r1);
        assert!(!reg.ready(&t1, r0, &third)); // gap of 2
    }

    #[test]
    fn wire_size_matches_counters() {
        let g = topology::ring(5);
        let reg = registry(&g);
        let t = reg.new_timestamp(ReplicaId::new(0));
        assert_eq!(t.num_counters(), 10); // 2n counters in a ring
        assert_eq!(t.wire_size_bytes(), 80);
        assert_eq!(t.max_counter(), 0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn merge_validates_sender() {
        let g = topology::ring(4);
        let reg = registry(&g);
        let mut t0 = reg.new_timestamp(ReplicaId::new(0));
        let t1 = reg.new_timestamp(ReplicaId::new(1));
        reg.merge(&mut t0, ReplicaId::new(2), &t1);
    }

    #[test]
    fn ready_check_reports_blocking_slot() {
        let g = topology::path(2);
        let reg = registry(&g);
        let (r0, r1) = (ReplicaId::new(0), ReplicaId::new(1));
        let mut t0 = reg.new_timestamp(r0);
        reg.advance(&mut t0, RegisterId::new(0));
        let first = t0.clone();
        reg.advance(&mut t0, RegisterId::new(0));
        let second = t0.clone();
        let t1 = reg.new_timestamp(r1);

        assert_eq!(reg.ready_check(&t1, r0, &first), JVerdict::Ready);
        // Second blocked: needs local e_01 counter to reach 1.
        let slot_e01 = reg.graphs().of(r1).position(EdgeId::new(r0, r1)).unwrap();
        assert_eq!(
            reg.ready_check(&t1, r0, &second),
            JVerdict::Blocked {
                slot: slot_e01,
                needs: 1
            }
        );
        // After merging the first, the counter has advanced to `needs`
        // and re-evaluation succeeds; re-delivery of the first is Dead.
        let mut t1m = t1.clone();
        reg.merge(&mut t1m, r0, &first);
        assert_eq!(reg.ready_check(&t1m, r0, &second), JVerdict::Ready);
        assert_eq!(reg.ready_check(&t1m, r0, &first), JVerdict::Dead);
    }

    #[test]
    fn ready_check_dead_on_zero_stamp() {
        let g = topology::path(2);
        let reg = registry(&g);
        let (r0, r1) = (ReplicaId::new(0), ReplicaId::new(1));
        let zero = reg.new_timestamp(r0);
        let t1 = reg.new_timestamp(r1);
        assert_eq!(reg.ready_check(&t1, r0, &zero), JVerdict::Dead);
    }

    #[test]
    fn merge_report_lists_advanced_slots_only() {
        let g = topology::path(2);
        let reg = registry(&g);
        let (r0, r1) = (ReplicaId::new(0), ReplicaId::new(1));
        let mut t0 = reg.new_timestamp(r0);
        reg.advance(&mut t0, RegisterId::new(0));
        let mut t1 = reg.new_timestamp(r1);
        let mut advanced = Vec::new();
        reg.merge_report(&mut t1, r0, &t0, &mut advanced);
        let slot_e01 = reg.graphs().of(r1).position(EdgeId::new(r0, r1)).unwrap();
        assert_eq!(advanced, vec![(slot_e01, 1)]);
        // Merging the same stamp again advances nothing.
        advanced.clear();
        reg.merge_report(&mut t1, r0, &t0, &mut advanced);
        assert!(advanced.is_empty());
    }

    #[test]
    fn projected_ops_match_full_ops() {
        // Every (ready_check, merge) over the full incoming timestamp must
        // agree with the projected slice — the wire invariant.
        for g in [
            topology::ring(5),
            topology::clique_full(4, 2),
            topology::star(4),
        ] {
            let reg = registry(&g);
            let n = g.num_replicas();
            let mut stamps: Vec<EdgeTimestamp> = (0..n)
                .map(|i| reg.new_timestamp(ReplicaId::new(i as u32)))
                .collect();
            for round in 0..3u64 {
                for s in 0..n {
                    let sender = ReplicaId::new(s as u32);
                    for x in g.placement().registers_of(sender) {
                        if (x.index() as u64 + round).is_multiple_of(2) {
                            let mut local = stamps[s].clone();
                            reg.advance(&mut local, x);
                            stamps[s] = local.clone();
                            // Indexing on purpose: `stamps[i]` is both
                            // read and conditionally replaced below.
                            #[allow(clippy::needless_range_loop)]
                            for i in 0..n {
                                if i == s {
                                    continue;
                                }
                                let ri = ReplicaId::new(i as u32);
                                let layout = reg.wire_layout(ri, sender);
                                let slice = layout.project(local.values());
                                assert_eq!(
                                    reg.ready_check(&stamps[i], sender, &local),
                                    reg.ready_check_projected(&stamps[i], sender, &slice),
                                    "verdict mismatch {sender:?}->{ri:?}"
                                );
                                let mut full_merged = stamps[i].clone();
                                let mut proj_merged = stamps[i].clone();
                                let (mut a1, mut a2) = (Vec::new(), Vec::new());
                                reg.merge_report(&mut full_merged, sender, &local, &mut a1);
                                reg.merge_projected_report(
                                    &mut proj_merged,
                                    sender,
                                    &slice,
                                    &mut a2,
                                );
                                assert_eq!(full_merged, proj_merged);
                                assert_eq!(a1, a2);
                                if reg.ready(&stamps[i], sender, &local) {
                                    stamps[i] = full_merged;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn clique_layout_compresses_ring_layout_does_not() {
        // Clique: every outgoing edge of a sender carries the same
        // registers, so the common slice's own rows collapse to one
        // explicit counter (the vector-clock observation of Section 5).
        let g = topology::clique_full(5, 4);
        let reg = registry(&g);
        let layout = reg.wire_layout(ReplicaId::new(0), ReplicaId::new(1));
        assert!(layout.num_derived() > 0, "clique must compress");
        // Ring: one register per edge — nothing is linearly dependent.
        let g = topology::ring(5);
        let reg = registry(&g);
        let layout = reg.wire_layout(ReplicaId::new(0), ReplicaId::new(1));
        assert_eq!(layout.num_derived(), 0);
        assert_eq!(layout.num_explicit(), layout.common_len());
    }

    #[test]
    fn encoded_size_tracks_counter_magnitudes() {
        let g = topology::ring(5);
        let reg = registry(&g);
        let mut t = reg.new_timestamp(ReplicaId::new(0));
        // All-zero: one byte per counter.
        assert_eq!(t.encoded_size_bytes(), t.num_counters());
        for _ in 0..200 {
            reg.advance(&mut t, RegisterId::new(0));
        }
        assert!(t.encoded_size_bytes() > t.num_counters());
        assert!(t.encoded_size_bytes() < t.wire_size_bytes());
    }

    #[test]
    fn ready_scan_matches_indexed_ready() {
        // Exercise adjacent and (via EXHAUSTIVE loops) richly connected
        // pairs across several topologies and update histories.
        for g in [
            topology::ring(5),
            topology::clique_full(4, 2),
            topology::star(4),
        ] {
            let reg = registry(&g);
            let n = g.num_replicas();
            let mut stamps: Vec<EdgeTimestamp> = (0..n)
                .map(|i| reg.new_timestamp(ReplicaId::new(i as u32)))
                .collect();
            let mut updates = Vec::new();
            for round in 0..3u64 {
                for (i, local) in stamps.iter_mut().enumerate() {
                    let ri = ReplicaId::new(i as u32);
                    for x in g.placement().registers_of(ri) {
                        if (x.index() as u64 + round).is_multiple_of(2) {
                            reg.advance(local, x);
                            updates.push((ri, local.clone()));
                        }
                    }
                }
            }
            for (sender, stamp) in &updates {
                for (i, local) in stamps.iter().enumerate() {
                    let ri = ReplicaId::new(i as u32);
                    if ri == *sender {
                        continue;
                    }
                    assert_eq!(
                        reg.ready(local, *sender, stamp),
                        reg.ready_scan(local, *sender, stamp),
                        "indexed vs scan J disagree for sender {sender:?} at {ri:?}"
                    );
                }
            }
        }
    }
}
