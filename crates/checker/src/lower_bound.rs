//! Timestamp-space lower bounds via conflict cliques (Theorem 15).
//!
//! The paper bounds the timestamp space size `σ^i(m)` of replica `i` by
//! the chromatic number of the conflict graph over causal pasts. A
//! *clique* in that graph — a set of pairwise-conflicting pasts — gives a
//! computable lower bound: `σ^i(m) ≥ clique size`.
//!
//! The clique the paper's closed forms rely on is the *prefix family*:
//! fix one update-prefix per directed edge, and take every combination of
//! per-edge counts in `1..=m` over the edges of `E_i`. Any two distinct
//! count vectors differ on some edge where one restriction is a strict
//! prefix (subset) of the other, and all other conditions of
//! Definition 13 hold, so the family is a clique of size `m^{|E_i|}` —
//! exactly `|E_i| · log₂ m` bits.
//!
//! Verifying all `m^{|E_i|} choose 2` pairs is exponential, so
//! [`verify_prefix_clique`] checks the construction on a caller-bounded
//! subset of edges and [`prefix_clique_bits`] reports the analytical size
//! of the full family.

use crate::conflict::{conflicts_symmetric, CausalPast};
use crate::trace::UpdateId;
use prcc_sharegraph::{EdgeId, ReplicaId, ShareGraph, TimestampGraph};

/// Builds the prefix causal past with `counts[k]` updates on
/// `varied[k]` and exactly one update on every other share-graph edge.
///
/// Updates are identified as `(issuer = e.from, seq = edge_index * M +
/// n)`, so the same (edge, n) pair denotes the same update across pasts —
/// prefix semantics.
fn prefix_past(g: &ShareGraph, varied: &[EdgeId], counts: &[usize]) -> CausalPast {
    const STRIDE: u64 = 1 << 20;
    let mut past = CausalPast::new();
    for (idx, &e) in g.edges().iter().enumerate() {
        let count = varied
            .iter()
            .position(|&v| v == e)
            .map(|k| counts[k])
            .unwrap_or(1);
        let reg = g
            .edge_registers(e)
            .first()
            .expect("share edges are non-empty");
        for n in 0..count {
            past.insert(
                UpdateId {
                    issuer: e.from,
                    seq: idx as u64 * STRIDE + n as u64,
                },
                reg,
            );
        }
    }
    past
}

/// Enumerates all count vectors in `1..=m` over `varied.len()` positions.
fn count_vectors(k: usize, m: usize) -> Vec<Vec<usize>> {
    let mut out = vec![vec![]];
    for _ in 0..k {
        out = out
            .into_iter()
            .flat_map(|v| {
                (1..=m).map(move |c| {
                    let mut w = v.clone();
                    w.push(c);
                    w
                })
            })
            .collect();
    }
    out
}

/// Verifies that the prefix family over `varied ⊆ E_i` with counts
/// `1..=m` is a clique of the conflict graph: every pair of distinct
/// pasts conflicts. Returns the clique size.
///
/// # Panics
///
/// Panics if a `varied` edge is not in `tg` or not a share edge.
pub fn verify_prefix_clique(
    g: &ShareGraph,
    tg: &TimestampGraph,
    varied: &[EdgeId],
    m: usize,
) -> Result<usize, String> {
    for &e in varied {
        assert!(tg.contains(e), "{e} not tracked by {}", tg.replica());
        assert!(g.has_edge(e), "{e} not a share edge");
    }
    let i: ReplicaId = tg.replica();
    let vectors = count_vectors(varied.len(), m);
    let pasts: Vec<CausalPast> = vectors.iter().map(|v| prefix_past(g, varied, v)).collect();
    for a in 0..pasts.len() {
        for b in (a + 1)..pasts.len() {
            if !conflicts_symmetric(g, i, &pasts[a], &pasts[b]) {
                return Err(format!(
                    "pasts {:?} and {:?} do not conflict at {i}",
                    vectors[a], vectors[b]
                ));
            }
        }
    }
    Ok(pasts.len())
}

/// The size in bits implied by the full prefix clique over all of `E_i`:
/// `|E_i| · log₂ m` (σ^i(m) ≥ m^{|E_i|}).
pub fn prefix_clique_bits(tg: &TimestampGraph, m: u64) -> f64 {
    tg.len() as f64 * (m as f64).log2()
}

/// Greedy coloring of an explicit conflict graph over `pasts` — an upper
/// bound on its chromatic number, useful for sanity-checking small
/// instances (χ ≥ clique, χ ≤ greedy).
pub fn greedy_coloring(g: &ShareGraph, i: ReplicaId, pasts: &[CausalPast]) -> usize {
    let n = pasts.len();
    let mut colors = vec![usize::MAX; n];
    let mut max_color = 0;
    for v in 0..n {
        let mut used = vec![false; max_color + 1];
        for u in 0..v {
            if colors[u] != usize::MAX
                && conflicts_symmetric(g, i, &pasts[u], &pasts[v])
                && colors[u] <= max_color
            {
                used[colors[u]] = true;
            }
        }
        let c = (0..).find(|&c| c >= used.len() || !used[c]).unwrap();
        colors[v] = c;
        max_color = max_color.max(c + 1);
    }
    max_color
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::{topology, LoopConfig};

    #[test]
    fn tree_prefix_clique_verifies() {
        // Star hub: vary both directions of one spoke, m = 3 ⇒ 9-clique.
        let g = topology::star(3);
        let hub = ReplicaId::new(0);
        let tg = TimestampGraph::build(&g, hub, LoopConfig::EXHAUSTIVE);
        let varied = [
            EdgeId::new(hub, ReplicaId::new(1)),
            EdgeId::new(ReplicaId::new(1), hub),
        ];
        let size = verify_prefix_clique(&g, &tg, &varied, 3).expect("clique");
        assert_eq!(size, 9);
    }

    #[test]
    fn ring_far_edge_participates_in_clique() {
        // Ring of 4: vary a far edge of replica 0 together with an
        // incident one; the far edge conflicts via the Definition 13 loop
        // clause.
        let g = topology::ring(4);
        let i = ReplicaId::new(0);
        let tg = TimestampGraph::build(&g, i, LoopConfig::EXHAUSTIVE);
        let varied = [
            EdgeId::new(ReplicaId::new(1), i),
            EdgeId::new(ReplicaId::new(2), ReplicaId::new(1)),
        ];
        let size = verify_prefix_clique(&g, &tg, &varied, 2).expect("clique");
        assert_eq!(size, 4);
    }

    #[test]
    fn clique_bits_match_paper_closed_forms() {
        // Cycle of n: |E_i| = 2n ⇒ 2n·log m bits — Section 4's implication.
        let g = topology::ring(5);
        let tg = TimestampGraph::build(&g, ReplicaId::new(0), LoopConfig::EXHAUSTIVE);
        let bits = prefix_clique_bits(&tg, 8);
        assert!((bits - 2.0 * 5.0 * 3.0).abs() < 1e-9);
        // Tree: 2·N_i·log m.
        let s = topology::star(4);
        let hub = TimestampGraph::build(&s, ReplicaId::new(0), LoopConfig::EXHAUSTIVE);
        assert!((prefix_clique_bits(&hub, 16) - 2.0 * 4.0 * 4.0).abs() < 1e-9);
    }

    #[test]
    fn untracked_edge_vectors_do_not_all_conflict() {
        // A path has no far-edge loops: varying a far (untracked) edge
        // must NOT produce a clique — the conflict relation refuses.
        let g = topology::path(4);
        let i = ReplicaId::new(0);
        let far = EdgeId::new(ReplicaId::new(2), ReplicaId::new(3));
        let p1 = prefix_past(&g, &[far], &[1]);
        let p2 = prefix_past(&g, &[far], &[2]);
        assert!(!conflicts_symmetric(&g, i, &p1, &p2));
    }

    #[test]
    fn greedy_coloring_bounds() {
        // On a verified clique, greedy coloring needs exactly clique-size
        // colors.
        let g = topology::star(2);
        let hub = ReplicaId::new(0);
        let varied = [EdgeId::new(hub, ReplicaId::new(1))];
        let pasts: Vec<CausalPast> = (1..=3).map(|c| prefix_past(&g, &varied, &[c])).collect();
        assert_eq!(greedy_coloring(&g, hub, &pasts), 3);
        // Non-conflicting pasts (identical) need 1 color.
        let same = vec![pasts[0].clone(), pasts[0].clone()];
        assert_eq!(greedy_coloring(&g, hub, &same), 1);
    }

    #[test]
    #[should_panic(expected = "not tracked")]
    fn varied_edges_must_be_tracked() {
        let g = topology::path(3);
        let tg = TimestampGraph::build(&g, ReplicaId::new(0), LoopConfig::EXHAUSTIVE);
        let far = EdgeId::new(ReplicaId::new(1), ReplicaId::new(2));
        let _ = verify_prefix_clique(&g, &tg, &[far], 2);
    }
}
