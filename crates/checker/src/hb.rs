//! The happened-before relation `↪` between updates (Definition 1).
//!
//! `u1 ↪ u2` iff `u1` was applied at some replica before that replica
//! issued `u2`, or transitively so. The relation is computed exactly from
//! a [`Trace`]: when replica `r` issues `u2`, every update currently
//! applied at `r` — together with *its* happened-before set, which is
//! already final — precedes `u2`.
//!
//! Sets are bitsets indexed by issue order, so queries are O(1) after an
//! O(events · updates / 64) build.

use crate::trace::{Event, Trace, UpdateId};
use std::collections::HashMap;

/// A bitset over updates (indexed by issue order).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UpdateSet {
    words: Vec<u64>,
}

impl UpdateSet {
    fn with_capacity(n: usize) -> Self {
        UpdateSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    fn insert(&mut self, idx: usize) {
        if idx / 64 >= self.words.len() {
            self.words.resize(idx / 64 + 1, 0);
        }
        self.words[idx / 64] |= 1 << (idx % 64);
    }

    fn contains(&self, idx: usize) -> bool {
        self.words
            .get(idx / 64)
            .is_some_and(|w| w & (1 << (idx % 64)) != 0)
    }

    fn union_with(&mut self, other: &UpdateSet) {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of updates in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    fn iter_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

/// The happened-before relation of a trace.
///
/// # Examples
///
/// ```
/// use prcc_checker::{Trace, HbGraph};
/// use prcc_sharegraph::{RegisterId, ReplicaId};
///
/// let mut t = Trace::new();
/// let u1 = t.record_issue(ReplicaId::new(0), RegisterId::new(0));
/// t.record_apply(u1, ReplicaId::new(1));
/// let u2 = t.record_issue(ReplicaId::new(1), RegisterId::new(1));
///
/// let hb = HbGraph::build(&t);
/// assert!(hb.happened_before(u1, u2));
/// assert!(!hb.happened_before(u2, u1));
/// ```
#[derive(Debug, Clone)]
pub struct HbGraph {
    /// Issue-order index of each update.
    index: HashMap<UpdateId, usize>,
    /// Update of each index.
    updates: Vec<UpdateId>,
    /// `preds[i]` = set of updates that happened before update `i`
    /// (transitively closed).
    preds: Vec<UpdateSet>,
}

impl HbGraph {
    /// Builds the relation from a trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace applies an update that was never issued.
    pub fn build(trace: &Trace) -> Self {
        let n = trace.num_updates();
        let mut index: HashMap<UpdateId, usize> = HashMap::with_capacity(n);
        let mut updates = Vec::with_capacity(n);
        let mut preds: Vec<UpdateSet> = Vec::with_capacity(n);
        // Per replica, the hb-*closure* of its state: all updates applied
        // there plus everything that happened before them. An update's hb
        // set is final by the time anyone applies it, so the closure can be
        // maintained incrementally — O(n/64) per event.
        let mut closure: HashMap<prcc_sharegraph::ReplicaId, UpdateSet> = HashMap::new();

        for ev in trace.events() {
            match *ev {
                Event::Issue { update, .. } => {
                    let idx = updates.len();
                    index.insert(update, idx);
                    updates.push(update);
                    let c = closure.entry(update.issuer).or_default();
                    // hb(update) = the issuer's current closure.
                    let mut hb = UpdateSet::with_capacity(n);
                    hb.union_with(c);
                    preds.push(hb);
                    // Issuing applies locally.
                    c.insert(idx);
                }
                Event::Apply { update, at } => {
                    let idx = *index
                        .get(&update)
                        .unwrap_or_else(|| panic!("{update} applied before issue"));
                    let hb = preds[idx].clone();
                    let c = closure.entry(at).or_default();
                    c.union_with(&hb);
                    c.insert(idx);
                }
            }
        }
        HbGraph {
            index,
            updates,
            preds,
        }
    }

    /// True iff `u1 ↪ u2`.
    pub fn happened_before(&self, u1: UpdateId, u2: UpdateId) -> bool {
        match (self.index.get(&u1), self.index.get(&u2)) {
            (Some(&i1), Some(&i2)) => self.preds[i2].contains(i1),
            _ => false,
        }
    }

    /// True iff the updates are concurrent (neither precedes the other,
    /// and they are distinct).
    pub fn concurrent(&self, u1: UpdateId, u2: UpdateId) -> bool {
        u1 != u2 && !self.happened_before(u1, u2) && !self.happened_before(u2, u1)
    }

    /// The updates that happened before `u`, in issue order.
    pub fn predecessors(&self, u: UpdateId) -> Vec<UpdateId> {
        match self.index.get(&u) {
            Some(&i) => self.preds[i]
                .iter_indices()
                .map(|p| self.updates[p])
                .collect(),
            None => Vec::new(),
        }
    }

    /// All updates in issue order.
    pub fn updates(&self) -> &[UpdateId] {
        &self.updates
    }

    /// Renders the happened-before relation as a Graphviz digraph with
    /// *transitive reduction* (only covering edges drawn) — readable even
    /// for dense relations.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph hb {\n  rankdir=LR;\n");
        let n = self.updates.len();
        for u in &self.updates {
            let _ = writeln!(out, "  \"{u}\";");
        }
        for b in 0..n {
            for a in 0..n {
                if !self.preds[b].contains(a) {
                    continue;
                }
                // Covering edge: no c with a ↪ c ↪ b.
                let covered = (0..n).any(|c| {
                    c != a && c != b && self.preds[b].contains(c) && self.preds[c].contains(a)
                });
                if !covered {
                    let _ = writeln!(out, "  \"{}\" -> \"{}\";", self.updates[a], self.updates[b]);
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::{RegisterId, ReplicaId};

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }

    /// The paper's Figure 2 example: u1, u2 by r1; u3 by r2; u4 by r3.
    /// u2 applied at r2; u3 applied at r3 (and r2 locally); u4 by r3.
    #[test]
    fn figure2_relations() {
        let mut t = Trace::new();
        let u1 = t.record_issue(r(0), x(0));
        let u2 = t.record_issue(r(0), x(1));
        t.record_apply(u2, r(1));
        let u3 = t.record_issue(r(1), x(2));
        t.record_apply(u3, r(2));
        let u4 = t.record_issue(r(2), x(3));
        // Reorder: u4 in the paper is concurrent with u1/u2 — issue it
        // *before* r2's u3 arrives... we already applied u3 at r2 before
        // issuing u4, which creates u3 ↪ u4. Build a second trace below
        // for the concurrency claims.
        let hb = HbGraph::build(&t);
        assert!(hb.happened_before(u1, u2)); // condition (i)
        assert!(hb.happened_before(u2, u3)); // condition (i)
        assert!(hb.happened_before(u1, u3)); // condition (ii), transitivity
        assert!(hb.happened_before(u3, u4));

        // Independent r3 issue:
        let mut t2 = Trace::new();
        let v1 = t2.record_issue(r(0), x(0));
        let v2 = t2.record_issue(r(0), x(1));
        t2.record_apply(v2, r(1));
        let v4 = t2.record_issue(r(2), x(3)); // r3 issues before seeing anything
        let hb2 = HbGraph::build(&t2);
        assert!(hb2.concurrent(v1, v4));
        assert!(hb2.concurrent(v2, v4));
    }

    #[test]
    fn same_replica_updates_are_ordered() {
        let mut t = Trace::new();
        let a = t.record_issue(r(0), x(0));
        let b = t.record_issue(r(0), x(0));
        let c = t.record_issue(r(0), x(0));
        let hb = HbGraph::build(&t);
        assert!(hb.happened_before(a, b));
        assert!(hb.happened_before(b, c));
        assert!(hb.happened_before(a, c));
        assert!(!hb.happened_before(c, a));
        assert_eq!(hb.predecessors(c), vec![a, b]);
    }

    #[test]
    fn apply_order_not_issue_order_matters() {
        // r0 issues a; r1 issues b without seeing a — concurrent even
        // though a was issued (globally) earlier.
        let mut t = Trace::new();
        let a = t.record_issue(r(0), x(0));
        let b = t.record_issue(r(1), x(0));
        t.record_apply(a, r(1));
        t.record_apply(b, r(0));
        let hb = HbGraph::build(&t);
        assert!(hb.concurrent(a, b));
    }

    #[test]
    fn transitive_chain_across_replicas() {
        let mut t = Trace::new();
        let mut prev: Option<UpdateId> = None;
        let mut all = Vec::new();
        for i in 0..5u32 {
            if let Some(p) = prev {
                t.record_apply(p, r(i));
            }
            let u = t.record_issue(r(i), x(i));
            all.push(u);
            prev = Some(u);
        }
        let hb = HbGraph::build(&t);
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert!(hb.happened_before(all[i], all[j]), "{i} -> {j}");
            }
        }
    }

    #[test]
    fn unknown_updates() {
        let t = Trace::new();
        let hb = HbGraph::build(&t);
        let ghost = UpdateId {
            issuer: r(9),
            seq: 9,
        };
        assert!(!hb.happened_before(ghost, ghost));
        assert!(hb.predecessors(ghost).is_empty());
    }

    #[test]
    #[should_panic(expected = "applied before issue")]
    fn apply_before_issue_panics() {
        let mut t = Trace::new();
        t.record_apply(
            UpdateId {
                issuer: r(0),
                seq: 0,
            },
            r(1),
        );
        let _ = HbGraph::build(&t);
    }

    #[test]
    fn dot_renders_transitive_reduction() {
        let mut t = Trace::new();
        let a = t.record_issue(r(0), x(0));
        let b = t.record_issue(r(0), x(0));
        let c = t.record_issue(r(0), x(0));
        let hb = HbGraph::build(&t);
        let dot = hb.to_dot();
        // a -> b and b -> c drawn, a -> c reduced away.
        assert!(dot.contains(&format!("\"{a}\" -> \"{b}\"")));
        assert!(dot.contains(&format!("\"{b}\" -> \"{c}\"")));
        assert!(!dot.contains(&format!("\"{a}\" -> \"{c}\"")));
        assert!(dot.starts_with("digraph hb"));
    }

    #[test]
    fn update_set_basics() {
        let mut s = UpdateSet::default();
        assert!(s.is_empty());
        s.insert(70);
        s.insert(3);
        assert_eq!(s.len(), 2);
        assert!(s.contains(70));
        assert!(!s.contains(71));
        assert_eq!(s.iter_indices().collect::<Vec<_>>(), vec![3, 70]);
    }
}
