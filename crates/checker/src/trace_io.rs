//! Plain-text serialization of execution traces.
//!
//! Line format, one event per line, for archiving runs and replaying them
//! through the checker offline:
//!
//! ```text
//! I <issuer> <seq> <register>   # issue
//! A <issuer> <seq> <replica>    # apply
//! ```

use crate::trace::{Event, Trace, UpdateId};
use prcc_sharegraph::{RegisterId, ReplicaId};
use std::fmt::Write as _;

/// Serializes a trace to the line format.
pub fn to_text(trace: &Trace) -> String {
    let mut out = String::new();
    for ev in trace.events() {
        match *ev {
            Event::Issue { update, register } => {
                let _ = writeln!(
                    out,
                    "I {} {} {}",
                    update.issuer.raw(),
                    update.seq,
                    register.raw()
                );
            }
            Event::Apply { update, at } => {
                let _ = writeln!(out, "A {} {} {}", update.issuer.raw(), update.seq, at.raw());
            }
        }
    }
    out
}

/// Errors from [`from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Parses the line format back into a trace. Blank lines and `#` comments
/// are skipped.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on malformed lines, duplicate issues, or
/// applies of unknown updates appearing before their issue.
pub fn from_text(text: &str) -> Result<Trace, ParseTraceError> {
    let mut trace = Trace::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| ParseTraceError {
            line: n + 1,
            message,
        };
        let mut parts = line.split_whitespace();
        let kind = parts.next().ok_or_else(|| err("empty event".into()))?;
        let nums: Vec<u64> = parts
            .map(|p| p.parse::<u64>())
            .collect::<Result<_, _>>()
            .map_err(|e| err(format!("bad number: {e}")))?;
        if nums.len() != 3 {
            return Err(err(format!("expected 3 fields, got {}", nums.len())));
        }
        let update = UpdateId {
            issuer: ReplicaId::new(nums[0] as u32),
            seq: nums[1],
        };
        match kind {
            "I" => {
                if trace.register_of(update).is_some() {
                    return Err(err(format!("duplicate issue of {update}")));
                }
                trace.record_issue_with_id(update, RegisterId::new(nums[2] as u32));
            }
            "A" => {
                if trace.register_of(update).is_none() {
                    return Err(err(format!("{update} applied before issue")));
                }
                trace.record_apply(update, ReplicaId::new(nums[2] as u32));
            }
            other => return Err(err(format!("unknown event kind '{other}'"))),
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }

    #[test]
    fn round_trip() {
        let mut t = Trace::new();
        let a = t.record_issue(r(0), x(3));
        t.record_apply(a, r(1));
        let b = t.record_issue(r(1), x(4));
        t.record_apply(b, r(2));
        let text = to_text(&t);
        let back = from_text(&text).expect("parse");
        assert_eq!(back.events(), t.events());
        assert_eq!(back.register_of(a), Some(x(3)));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\nI 0 0 5  # inline comment\nA 0 0 1\n";
        let t = from_text(text).expect("parse");
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(from_text("Z 1 2 3").is_err());
        assert!(from_text("I 1 2").is_err());
        assert!(from_text("I a b c").is_err());
        assert!(from_text("A 0 0 1")
            .unwrap_err()
            .message
            .contains("before issue"));
        let dup = "I 0 0 1\nI 0 0 2";
        assert!(from_text(dup).unwrap_err().message.contains("duplicate"));
        let e = from_text("I 1 2").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("line 1"));
    }

    #[test]
    fn round_trip_preserves_checker_verdict() {
        use crate::consistency::check;
        use prcc_sharegraph::Placement;
        let p = Placement::builder(3).share(0, [0, 1, 2]).build();
        let mut t = Trace::new();
        let u1 = t.record_issue(r(0), x(0));
        t.record_apply(u1, r(1));
        let u2 = t.record_issue(r(1), x(0));
        t.record_apply(u2, r(2)); // safety violation: u1 not at r2
        t.record_apply(u1, r(2));
        t.record_apply(u2, r(0));
        let direct = check(&t, &p);
        let replayed = check(&from_text(&to_text(&t)).unwrap(), &p);
        assert_eq!(direct.violations, replayed.violations);
        assert!(!replayed.is_consistent());
    }
}
