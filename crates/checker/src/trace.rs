//! Execution traces: the raw material the checker works on.
//!
//! Protocol implementations (simulated or threaded) record two kinds of
//! events, in the global order they occurred:
//!
//! * **Issue** — a replica performs a client write (step 2 of the
//!   prototype). Issuing includes applying the update locally.
//! * **Apply** — a replica applies a remote update from its pending set
//!   (step 4 of the prototype).

use prcc_sharegraph::{RegisterId, ReplicaId};
use std::collections::HashMap;
use std::fmt;

/// Globally unique update identifier: the issuer plus a per-issuer
/// sequence number (starting at 0).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct UpdateId {
    /// The replica that issued the update.
    pub issuer: ReplicaId,
    /// Per-issuer sequence number.
    pub seq: u64,
}

impl fmt::Display for UpdateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u({}#{})", self.issuer, self.seq)
    }
}

/// One trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// `update` was issued (and locally applied) by its issuer, writing
    /// `register`.
    Issue {
        /// The update.
        update: UpdateId,
        /// The register written.
        register: RegisterId,
    },
    /// `update` was applied at replica `at` (a remote replica).
    Apply {
        /// The update.
        update: UpdateId,
        /// The applying replica.
        at: ReplicaId,
    },
}

/// An execution trace: events in global order plus per-update metadata.
///
/// # Examples
///
/// ```
/// use prcc_checker::{Trace, UpdateId};
/// use prcc_sharegraph::{RegisterId, ReplicaId};
///
/// let mut t = Trace::new();
/// let u = t.record_issue(ReplicaId::new(0), RegisterId::new(3));
/// t.record_apply(u, ReplicaId::new(1));
/// assert_eq!(t.events().len(), 2);
/// assert_eq!(t.register_of(u), Some(RegisterId::new(3)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<Event>,
    registers: HashMap<UpdateId, RegisterId>,
    next_seq: HashMap<ReplicaId, u64>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Records an issue by `issuer` writing `register`, allocating the
    /// next sequence number. Returns the new update's id.
    pub fn record_issue(&mut self, issuer: ReplicaId, register: RegisterId) -> UpdateId {
        let seq = self.next_seq.entry(issuer).or_insert(0);
        let update = UpdateId { issuer, seq: *seq };
        *seq += 1;
        self.registers.insert(update, register);
        self.events.push(Event::Issue { update, register });
        update
    }

    /// Records an issue with a caller-chosen id (useful when replaying a
    /// trace produced elsewhere).
    ///
    /// # Panics
    ///
    /// Panics if the id was already recorded.
    pub fn record_issue_with_id(&mut self, update: UpdateId, register: RegisterId) {
        assert!(
            self.registers.insert(update, register).is_none(),
            "duplicate issue of {update}"
        );
        let seq = self.next_seq.entry(update.issuer).or_insert(0);
        *seq = (*seq).max(update.seq + 1);
        self.events.push(Event::Issue { update, register });
    }

    /// Records that `update` was applied at replica `at`.
    pub fn record_apply(&mut self, update: UpdateId, at: ReplicaId) {
        self.events.push(Event::Apply { update, at });
    }

    /// All events in global order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The register written by `update`, if known.
    pub fn register_of(&self, update: UpdateId) -> Option<RegisterId> {
        self.registers.get(&update).copied()
    }

    /// All update ids, in issue order.
    pub fn updates(&self) -> Vec<UpdateId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Issue { update, .. } => Some(*update),
                Event::Apply { .. } => None,
            })
            .collect()
    }

    /// Number of issued updates.
    pub fn num_updates(&self) -> usize {
        self.registers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }

    #[test]
    fn sequence_numbers_per_issuer() {
        let mut t = Trace::new();
        let a = t.record_issue(r(0), x(0));
        let b = t.record_issue(r(0), x(1));
        let c = t.record_issue(r(1), x(0));
        assert_eq!(a.seq, 0);
        assert_eq!(b.seq, 1);
        assert_eq!(c.seq, 0);
        assert_eq!(t.num_updates(), 3);
        assert_eq!(t.updates(), vec![a, b, c]);
    }

    #[test]
    fn register_lookup() {
        let mut t = Trace::new();
        let u = t.record_issue(r(2), x(9));
        assert_eq!(t.register_of(u), Some(x(9)));
        assert_eq!(
            t.register_of(UpdateId {
                issuer: r(0),
                seq: 5
            }),
            None
        );
    }

    #[test]
    fn explicit_ids_respected() {
        let mut t = Trace::new();
        let u = UpdateId {
            issuer: r(1),
            seq: 7,
        };
        t.record_issue_with_id(u, x(0));
        // Fresh issues continue after the explicit seq.
        let v = t.record_issue(r(1), x(0));
        assert_eq!(v.seq, 8);
    }

    #[test]
    #[should_panic(expected = "duplicate issue")]
    fn duplicate_explicit_id_panics() {
        let mut t = Trace::new();
        let u = UpdateId {
            issuer: r(0),
            seq: 0,
        };
        t.record_issue_with_id(u, x(0));
        t.record_issue_with_id(u, x(1));
    }

    #[test]
    fn display_format() {
        let u = UpdateId {
            issuer: r(3),
            seq: 14,
        };
        assert_eq!(u.to_string(), "u(r3#14)");
    }
}
