//! Replica-centric causal consistency checking (Definition 2).
//!
//! * **Safety**: when replica `i` applies `u1` (register in `X_i`), every
//!   `u2 ↪ u1` writing some register of `X_i` must already be applied at
//!   `i`.
//! * **Liveness**: by the end of the (quiescent) execution, every update
//!   on register `x` has been applied at every replica storing `x`.
//!
//! The checker replays a [`Trace`] against the exact happened-before
//! relation ([`HbGraph`]) — it is oblivious to how the protocol tracked
//! causality, so it catches both under-tracking (safety violations) and
//! lost updates (liveness violations).

use crate::hb::HbGraph;
use crate::trace::{Event, Trace, UpdateId};
use prcc_sharegraph::{Placement, ReplicaId};
use std::collections::HashSet;
use std::fmt;

/// A consistency violation found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// `update` was applied at `at` before its causal predecessor
    /// `missing` (whose register `at` also stores).
    Safety {
        /// The update that was applied too early.
        update: UpdateId,
        /// The replica that applied it.
        at: ReplicaId,
        /// The causally preceding update not yet applied there.
        missing: UpdateId,
    },
    /// `update` (on a register stored at `at`) was never applied at `at`.
    Liveness {
        /// The update that never arrived.
        update: UpdateId,
        /// The replica that should have applied it.
        at: ReplicaId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Safety {
                update,
                at,
                missing,
            } => write!(
                f,
                "safety: {update} applied at {at} before its dependency {missing}"
            ),
            Violation::Liveness { update, at } => {
                write!(f, "liveness: {update} never applied at {at}")
            }
        }
    }
}

/// The outcome of checking a trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckReport {
    /// All violations, in detection order.
    pub violations: Vec<Violation>,
    /// Number of apply events checked.
    pub applies_checked: usize,
}

impl CheckReport {
    /// True if the trace is causally consistent (and live).
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }

    /// Safety violations only.
    pub fn safety_violations(&self) -> impl Iterator<Item = &Violation> {
        self.violations
            .iter()
            .filter(|v| matches!(v, Violation::Safety { .. }))
    }

    /// Liveness violations only.
    pub fn liveness_violations(&self) -> impl Iterator<Item = &Violation> {
        self.violations
            .iter()
            .filter(|v| matches!(v, Violation::Liveness { .. }))
    }
}

/// Checks a complete (quiescent) execution for replica-centric causal
/// consistency under `placement`.
///
/// # Examples
///
/// ```
/// use prcc_checker::{Trace, check};
/// use prcc_sharegraph::{Placement, RegisterId, ReplicaId};
///
/// let p = Placement::builder(2).share(0, [0, 1]).build();
/// let mut t = Trace::new();
/// let u = t.record_issue(ReplicaId::new(0), RegisterId::new(0));
/// t.record_apply(u, ReplicaId::new(1));
/// assert!(check(&t, &p).is_consistent());
/// ```
pub fn check(trace: &Trace, placement: &Placement) -> CheckReport {
    let hb = HbGraph::build(trace);
    check_with_hb(trace, placement, &hb)
}

/// Like [`check`] but reuses a prebuilt happened-before graph.
pub fn check_with_hb(trace: &Trace, placement: &Placement, hb: &HbGraph) -> CheckReport {
    let mut report = CheckReport::default();
    // Per replica: applied set.
    let mut applied: Vec<HashSet<UpdateId>> = vec![HashSet::new(); placement.num_replicas()];

    for ev in trace.events() {
        match *ev {
            Event::Issue { update, .. } => {
                applied[update.issuer.index()].insert(update);
            }
            Event::Apply { update, at } => {
                report.applies_checked += 1;
                // Safety: all hb-predecessors writing registers of X_at
                // must already be there.
                for pred in hb.predecessors(update) {
                    let reg = trace
                        .register_of(pred)
                        .expect("trace metadata for predecessor");
                    if placement.stores(at, reg) && !applied[at.index()].contains(&pred) {
                        report.violations.push(Violation::Safety {
                            update,
                            at,
                            missing: pred,
                        });
                    }
                }
                applied[at.index()].insert(update);
            }
        }
    }

    // Liveness: every update reached every holder of its register.
    for u in trace.updates() {
        let reg = trace.register_of(u).expect("register metadata");
        for &holder in placement.holders(reg) {
            if !applied[holder.index()].contains(&u) {
                report.violations.push(Violation::Liveness {
                    update: u,
                    at: holder,
                });
            }
        }
    }
    report
}

/// The causal past of `replica` at the end of the trace (Definition 6's
/// vertex set `S`): all updates applied there plus their hb-predecessors.
pub fn causal_past(trace: &Trace, replica: ReplicaId, hb: &HbGraph) -> HashSet<UpdateId> {
    let mut past = HashSet::new();
    for ev in trace.events() {
        let u = match *ev {
            Event::Issue { update, .. } if update.issuer == replica => update,
            Event::Apply { update, at } if at == replica => update,
            _ => continue,
        };
        past.insert(u);
        past.extend(hb.predecessors(u));
    }
    past
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::RegisterId;

    fn r(i: u32) -> ReplicaId {
        ReplicaId::new(i)
    }
    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }

    /// Three replicas all sharing register 0.
    fn full3() -> Placement {
        Placement::builder(3).share(0, [0, 1, 2]).build()
    }

    #[test]
    fn consistent_broadcast_passes() {
        let p = full3();
        let mut t = Trace::new();
        let u1 = t.record_issue(r(0), x(0));
        t.record_apply(u1, r(1));
        t.record_apply(u1, r(2));
        let u2 = t.record_issue(r(1), x(0));
        t.record_apply(u2, r(0));
        t.record_apply(u2, r(2));
        let rep = check(&t, &p);
        assert!(rep.is_consistent(), "{:?}", rep.violations);
        assert_eq!(rep.applies_checked, 4);
    }

    #[test]
    fn causal_order_violation_detected() {
        // u1 ↪ u2 (r1 applied u1 before issuing u2), but r2 applies u2
        // first.
        let p = full3();
        let mut t = Trace::new();
        let u1 = t.record_issue(r(0), x(0));
        t.record_apply(u1, r(1));
        let u2 = t.record_issue(r(1), x(0));
        t.record_apply(u2, r(2)); // violation: u1 not yet at r2
        t.record_apply(u1, r(2));
        t.record_apply(u2, r(0));
        let rep = check(&t, &p);
        assert_eq!(rep.safety_violations().count(), 1, "{:?}", rep.violations);
        match &rep.violations[0] {
            Violation::Safety {
                update,
                at,
                missing,
            } => {
                assert_eq!(*update, u2);
                assert_eq!(*at, r(2));
                assert_eq!(*missing, u1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_delivery_is_liveness_violation() {
        let p = full3();
        let mut t = Trace::new();
        let u1 = t.record_issue(r(0), x(0));
        t.record_apply(u1, r(1));
        // never applied at r2
        let rep = check(&t, &p);
        assert_eq!(rep.liveness_violations().count(), 1);
        assert_eq!(
            rep.violations[0],
            Violation::Liveness {
                update: u1,
                at: r(2)
            }
        );
    }

    #[test]
    fn partial_replication_ignores_unstored_registers() {
        // r0, r1 share reg 0; r2 stores only reg 1. An update to reg 0
        // need not reach r2, and dependencies on reg-0 updates don't gate
        // r2's applies.
        let p = Placement::builder(3)
            .share(0, [0, 1])
            .share(1, [1, 2])
            .build();
        let mut t = Trace::new();
        let u1 = t.record_issue(r(0), x(0));
        t.record_apply(u1, r(1));
        let u2 = t.record_issue(r(1), x(1)); // depends on u1
        t.record_apply(u2, r(2)); // fine: r2 doesn't store reg 0
        let rep = check(&t, &p);
        assert!(rep.is_consistent(), "{:?}", rep.violations);
    }

    #[test]
    fn dependency_through_unshared_register_still_gates() {
        // Ring-like: r2 stores regs 0 and 1. u1 (reg 0) ↪ u2 (reg 1); r2
        // must apply u1 before u2.
        let p = Placement::builder(3)
            .share(0, [0, 1, 2])
            .share(1, [1, 2])
            .build();
        let mut t = Trace::new();
        let u1 = t.record_issue(r(0), x(0));
        t.record_apply(u1, r(1));
        let u2 = t.record_issue(r(1), x(1));
        t.record_apply(u2, r(2)); // u1 missing at r2 and r2 stores reg 0
        t.record_apply(u1, r(2));
        let rep = check(&t, &p);
        assert_eq!(rep.safety_violations().count(), 1);
    }

    #[test]
    fn causal_past_collects_transitive_deps() {
        let p = full3();
        let _ = p;
        let mut t = Trace::new();
        let u1 = t.record_issue(r(0), x(0));
        t.record_apply(u1, r(1));
        let u2 = t.record_issue(r(1), x(0));
        t.record_apply(u2, r(2));
        let hb = HbGraph::build(&t);
        let past = causal_past(&t, r(2), &hb);
        // r2 applied u2, whose past includes u1.
        assert!(past.contains(&u1));
        assert!(past.contains(&u2));
        assert_eq!(past.len(), 2);
        // r0's past: only its own issue.
        let past0 = causal_past(&t, r(0), &hb);
        assert_eq!(past0.len(), 1);
    }

    #[test]
    fn empty_trace_is_consistent() {
        let rep = check(&Trace::new(), &full3());
        assert!(rep.is_consistent());
        assert_eq!(rep.applies_checked, 0);
    }
}
