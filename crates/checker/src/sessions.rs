//! Session-guarantee checking over served client operations.
//!
//! The client-server architecture (paper §6) promises each client the
//! session guarantees implied by causal consistency. This module holds
//! the protocol-independent verdict machinery: a stream of served
//! [`SessionEvent`]s (recorded by whichever runtime served them — the
//! lockstep `ClientServerSystem` or the threaded serving tier) is
//! replayed against the exact happened-before relation recomputed from
//! the execution [`Trace`], so a serving path that under-enforces its
//! guarantees is caught regardless of what its own metadata claims.

use crate::hb::HbGraph;
use crate::trace::{Trace, UpdateId};
use prcc_sharegraph::{ClientId, RegisterId};
use std::collections::HashMap;

/// One served client operation, in service order — the raw material for
/// session-guarantee checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEvent {
    /// The client's write was served, producing `update` on `register`.
    Write {
        /// The client.
        client: ClientId,
        /// The produced update.
        update: UpdateId,
        /// The written register.
        register: RegisterId,
    },
    /// The client's read was served, observing the value produced by
    /// `observed` (or nothing, for an unwritten register).
    Read {
        /// The client.
        client: ClientId,
        /// The read register.
        register: RegisterId,
        /// The update whose value was observed.
        observed: Option<UpdateId>,
    },
}

/// Checks the client-visible session guarantees implied by causal
/// consistency:
///
/// * **read-your-writes** — after a client's write `u` to `x`, a read of
///   `x` by the same client never observes a value whose update strictly
///   precedes `u` (`observed ↪ u` is forbidden; concurrent overwrites
///   are allowed);
/// * **monotonic reads** — successive reads of `x` by one client never
///   go causally backwards (`v₂ ↪ v₁` is forbidden).
///
/// `events` must be in per-client service order (interleaving between
/// clients is irrelevant: all state below is keyed by client). Returns
/// human-readable descriptions of any violations.
pub fn check_sessions(trace: &Trace, events: &[SessionEvent]) -> Vec<String> {
    check_sessions_with_hb(&HbGraph::build(trace), events)
}

/// [`check_sessions`] against a prebuilt happened-before graph — lets a
/// caller share one `HbGraph::build` between the consistency check and
/// the session check on large traces.
pub fn check_sessions_with_hb(hb: &HbGraph, events: &[SessionEvent]) -> Vec<String> {
    let mut violations = Vec::new();
    // Per (client, register): last write update; last read observation.
    let mut last_write: HashMap<(ClientId, RegisterId), UpdateId> = HashMap::new();
    let mut last_read: HashMap<(ClientId, RegisterId), UpdateId> = HashMap::new();
    for ev in events {
        match *ev {
            SessionEvent::Write {
                client,
                update,
                register,
            } => {
                last_write.insert((client, register), update);
                // The client's own write is also its latest observation.
                last_read.insert((client, register), update);
            }
            SessionEvent::Read {
                client,
                register,
                observed,
            } => {
                let Some(obs) = observed else {
                    if last_write.contains_key(&(client, register)) {
                        violations.push(format!(
                            "read-your-writes: {client} read unwritten {register} after writing it"
                        ));
                    }
                    continue;
                };
                if let Some(&w) = last_write.get(&(client, register)) {
                    if hb.happened_before(obs, w) {
                        violations.push(format!(
                            "read-your-writes: {client} observed {obs} older than own write {w} on {register}"
                        ));
                    }
                }
                if let Some(&prev) = last_read.get(&(client, register)) {
                    if hb.happened_before(obs, prev) {
                        violations.push(format!(
                            "monotonic-reads: {client} observed {obs} older than previous {prev} on {register}"
                        ));
                    }
                }
                last_read.insert((client, register), obs);
            }
        }
    }
    violations
}

/// The acked writes in a served-op log: every `(update, register)` a
/// runtime acknowledged to a client. Durability checking's raw
/// material — a fault-tolerant runtime owes survival to exactly these
/// (an op that never acked owes nothing), so a chaos harness asserts
/// each one is still covered by every holder's converged final state.
pub fn acked_writes(events: &[SessionEvent]) -> Vec<(UpdateId, RegisterId)> {
    events
        .iter()
        .filter_map(|ev| match *ev {
            SessionEvent::Write {
                update, register, ..
            } => Some((update, register)),
            SessionEvent::Read { .. } => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::ReplicaId;

    fn uid(issuer: u32, seq: u64) -> UpdateId {
        UpdateId {
            issuer: ReplicaId::new(issuer),
            seq,
        }
    }

    /// Trace: r0 issues u0 then u1 (u0 ↪ u1 by program order).
    fn chain_trace() -> Trace {
        let mut t = Trace::new();
        t.record_issue_with_id(uid(0, 0), RegisterId::new(0));
        t.record_issue_with_id(uid(0, 1), RegisterId::new(0));
        t
    }

    #[test]
    fn clean_session_passes() {
        let t = chain_trace();
        let c = ClientId::new(0);
        let x = RegisterId::new(0);
        let events = vec![
            SessionEvent::Write {
                client: c,
                update: uid(0, 0),
                register: x,
            },
            SessionEvent::Read {
                client: c,
                register: x,
                observed: Some(uid(0, 1)),
            },
        ];
        assert!(check_sessions(&t, &events).is_empty());
    }

    #[test]
    fn stale_observation_fires_both_guarantees() {
        let t = chain_trace();
        let c = ClientId::new(0);
        let x = RegisterId::new(0);
        let events = vec![
            SessionEvent::Write {
                client: c,
                update: uid(0, 1),
                register: x,
            },
            SessionEvent::Read {
                client: c,
                register: x,
                observed: Some(uid(0, 0)),
            },
        ];
        let v = check_sessions(&t, &events);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("read-your-writes"));
        assert!(v[1].contains("monotonic-reads"));
    }

    #[test]
    fn unwritten_read_after_own_write_flagged() {
        let t = chain_trace();
        let c = ClientId::new(0);
        let x = RegisterId::new(0);
        let events = vec![
            SessionEvent::Write {
                client: c,
                update: uid(0, 0),
                register: x,
            },
            SessionEvent::Read {
                client: c,
                register: x,
                observed: None,
            },
        ];
        let v = check_sessions(&t, &events);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("unwritten"));
    }

    #[test]
    fn clients_are_independent() {
        let t = chain_trace();
        let x = RegisterId::new(0);
        // Client 0 wrote u1; client 1 then observes the older u0 — fine,
        // client 1 made no promise about client 0's writes.
        let events = vec![
            SessionEvent::Write {
                client: ClientId::new(0),
                update: uid(0, 1),
                register: x,
            },
            SessionEvent::Read {
                client: ClientId::new(1),
                register: x,
                observed: Some(uid(0, 0)),
            },
        ];
        assert!(check_sessions(&t, &events).is_empty());
    }
}
