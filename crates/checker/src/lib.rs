//! Causal-consistency checking for the PRCC reproduction.
//!
//! Protocol-independent verification machinery:
//!
//! * [`Trace`] — execution records (issues and applies, globally ordered);
//! * [`HbGraph`] — the exact happened-before relation `↪` of Definition 1;
//! * [`check`] — safety and liveness of replica-centric causal consistency
//!   (Definition 2), reporting every [`Violation`];
//! * [`conflict`] — the conflict relation on causal pasts (Definition 13)
//!   underlying the paper's timestamp-space lower bound (Theorem 15).
//!
//! The checker never looks at protocol metadata: it recomputes causality
//! from the trace itself, so it catches protocols that under-track
//! (safety violations) or lose updates (liveness violations).
//!
//! # Examples
//!
//! ```
//! use prcc_checker::{Trace, check};
//! use prcc_sharegraph::{Placement, RegisterId, ReplicaId};
//!
//! let p = Placement::builder(2).share(0, [0, 1]).build();
//! let mut t = Trace::new();
//! let u = t.record_issue(ReplicaId::new(0), RegisterId::new(0));
//! t.record_apply(u, ReplicaId::new(1));
//! assert!(check(&t, &p).is_consistent());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod conflict;
pub mod consistency;
pub mod hb;
pub mod lower_bound;
pub mod sessions;
pub mod trace;
pub mod trace_io;

pub use conflict::{conflicts, conflicts_symmetric, CausalPast};
pub use consistency::{causal_past, check, check_with_hb, CheckReport, Violation};
pub use hb::HbGraph;
pub use lower_bound::{greedy_coloring, prefix_clique_bits, verify_prefix_clique};
pub use sessions::{acked_writes, check_sessions, check_sessions_with_hb, SessionEvent};
pub use trace::{Event, Trace, UpdateId};
pub use trace_io::{from_text, to_text, ParseTraceError};
