//! The conflict relation on causal pasts — Definition 13 of the paper.
//!
//! Two causal pasts `S₁`, `S₂` of replica `i` *conflict* when any
//! algorithm satisfying Constraint 1 (timestamps are a function of the
//! causal past) must assign them different timestamps (Lemma 14). The
//! chromatic number of the conflict graph then lower-bounds the timestamp
//! space size (Theorem 15).
//!
//! This module implements the relation exactly, for the small instances
//! used in experiment E4 and in tests; loop quantification is exhaustive
//! (exponential worst case, like the definition itself).

use crate::trace::UpdateId;
use prcc_sharegraph::{EdgeId, RegisterId, ReplicaId, ShareGraph};
use std::collections::BTreeSet;

/// A causal past: a set of updates, each with the register it wrote.
/// (Definition 6 represents a past as a set of updates; registers are the
/// only metadata the conflict relation needs.)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CausalPast {
    updates: BTreeSet<(UpdateId, RegisterId)>,
}

impl CausalPast {
    /// An empty causal past.
    pub fn new() -> Self {
        CausalPast::default()
    }

    /// Adds an update.
    pub fn insert(&mut self, u: UpdateId, register: RegisterId) {
        self.updates.insert((u, register));
    }

    /// Number of updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// The restriction `S|_e` (for `e = e_jk`): updates issued by `j` on
    /// registers in `X_jk`. Empty when `e ∉ E`.
    pub fn restrict(&self, g: &ShareGraph, e: EdgeId) -> BTreeSet<UpdateId> {
        let regs = g.edge_registers(e);
        self.updates
            .iter()
            .filter(|(u, x)| u.issuer == e.from && regs.contains(*x))
            .map(|(u, _)| *u)
            .collect()
    }
}

impl FromIterator<(UpdateId, RegisterId)> for CausalPast {
    fn from_iter<I: IntoIterator<Item = (UpdateId, RegisterId)>>(iter: I) -> Self {
        CausalPast {
            updates: iter.into_iter().collect(),
        }
    }
}

/// True iff causal pasts `s1`, `s2` of replica `i` conflict
/// (Definition 13). The relation as stated is asymmetric in the strict
/// subset (`S₁|_e ⊂ S₂|_e`); use [`conflicts_symmetric`] for the
/// either-order variant.
pub fn conflicts(g: &ShareGraph, i: ReplicaId, s1: &CausalPast, s2: &CausalPast) -> bool {
    // Condition 1: non-empty restrictions on every edge, for both pasts.
    for &e in g.edges() {
        if s1.restrict(g, e).is_empty() || s2.restrict(g, e).is_empty() {
            return false;
        }
    }
    // Condition 2a: a strict subset on an edge incident at i.
    for &e in g.edges() {
        if (e.from == i || e.to == i) && strict_subset(&s1.restrict(g, e), &s2.restrict(g, e)) {
            return true;
        }
    }
    // Condition 2b: a qualifying simple loop (i, l_1..l_s, r_1..r_t, i)
    // with e = e_{r_1 l_s}.
    let mut cycle = vec![i];
    let mut used = vec![false; g.num_replicas()];
    used[i.index()] = true;
    cycle_dfs(g, i, i, &mut cycle, &mut used, &mut |cycle| {
        // cycle = [i, v_1, ..., v_m]; split after position s.
        let m = cycle.len() - 1;
        for s in 1..m {
            let ls = cycle[s];
            let r1 = cycle[s + 1];
            let e = EdgeId::new(r1, ls);
            if !g.has_edge(e) {
                continue;
            }
            if !strict_subset(&s1.restrict(g, e), &s2.restrict(g, e)) {
                continue;
            }
            if loop_conditions_hold(g, i, &cycle[1..=s], &cycle[s + 1..], e, s1, s2) {
                return true;
            }
        }
        false
    })
}

/// Symmetric conflict: [`conflicts`] in either argument order.
pub fn conflicts_symmetric(g: &ShareGraph, i: ReplicaId, s1: &CausalPast, s2: &CausalPast) -> bool {
    conflicts(g, i, s1, s2) || conflicts(g, i, s2, s1)
}

fn strict_subset(a: &BTreeSet<UpdateId>, b: &BTreeSet<UpdateId>) -> bool {
    a.len() < b.len() && a.is_subset(b)
}

/// Checks conditions (1) and (2) of Definition 13's loop clause for the
/// loop `(i, ls_path…, rs_path…, i)` with distinguished edge `e`.
///
/// `ls` is `l_1..l_s` (so `ls.last() = l_s`), `rs` is `r_1..r_t`.
fn loop_conditions_hold(
    g: &ShareGraph,
    i: ReplicaId,
    ls: &[ReplicaId],
    rs: &[ReplicaId],
    e: EdgeId,
    s1: &CausalPast,
    s2: &CausalPast,
) -> bool {
    // (1): S1|_{e_{r_p l_q}} = S2|_{e_{r_p l_q}} for all p, q (r_{t+1}=i),
    // except e itself.
    let mut rs_ext: Vec<ReplicaId> = rs.to_vec();
    rs_ext.push(i);
    for &rp in &rs_ext {
        for &lq in ls {
            let edge = EdgeId::new(rp, lq);
            if edge == e || !g.has_edge(edge) {
                continue;
            }
            if s1.restrict(g, edge) != s2.restrict(g, edge) {
                return false;
            }
        }
    }
    // (2): S_x|_{e_{r_p r_{p+1}}} − ∪_q S_x|_{e_{r_p l_q}} ≠ ∅ for
    // 1 ≤ p ≤ t, x = 1, 2.
    for p in 0..rs.len() {
        let rp = rs[p];
        let rp1 = rs_ext[p + 1];
        let chain = EdgeId::new(rp, rp1);
        if !g.has_edge(chain) {
            return false;
        }
        for s in [s1, s2] {
            let mut on_chain = s.restrict(g, chain);
            for &lq in ls {
                let lateral = EdgeId::new(rp, lq);
                if g.has_edge(lateral) {
                    for u in s.restrict(g, lateral) {
                        on_chain.remove(&u);
                    }
                }
            }
            if on_chain.is_empty() {
                return false;
            }
        }
    }
    true
}

/// Enumerates simple cycles `(i, v_1, …, v_m, i)` with `m ≥ 2`, invoking
/// `f` on each; stops early if `f` returns true.
fn cycle_dfs(
    g: &ShareGraph,
    anchor: ReplicaId,
    v: ReplicaId,
    cycle: &mut Vec<ReplicaId>,
    used: &mut Vec<bool>,
    f: &mut impl FnMut(&[ReplicaId]) -> bool,
) -> bool {
    for &w in g.neighbors(v) {
        if w == anchor {
            if cycle.len() >= 3 && f(cycle) {
                return true;
            }
            continue;
        }
        if used[w.index()] {
            continue;
        }
        used[w.index()] = true;
        cycle.push(w);
        let found = cycle_dfs(g, anchor, w, cycle, used, f);
        cycle.pop();
        used[w.index()] = false;
        if found {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use prcc_sharegraph::topology;

    fn u(issuer: u32, seq: u64) -> UpdateId {
        UpdateId {
            issuer: ReplicaId::new(issuer),
            seq,
        }
    }
    fn x(i: u32) -> RegisterId {
        RegisterId::new(i)
    }

    /// A past with one update per directed edge of `g` (register = the
    /// first register of that edge), issued by the edge source.
    fn base_past(g: &ShareGraph) -> CausalPast {
        let mut past = CausalPast::new();
        for (n, &e) in g.edges().iter().enumerate() {
            let reg = g.edge_registers(e).first().expect("non-empty edge");
            past.insert(u(e.from.raw(), 1000 + n as u64), reg);
        }
        past
    }

    #[test]
    fn restriction_filters_by_issuer_and_register() {
        let g = topology::ring(3);
        let mut past = CausalPast::new();
        past.insert(u(0, 0), x(0)); // reg 0 shared r0-r1
        past.insert(u(0, 1), x(2)); // reg 2 shared r2-r0
        past.insert(u(1, 0), x(0));
        let e01 = EdgeId::new(ReplicaId::new(0), ReplicaId::new(1));
        let r = past.restrict(&g, e01);
        assert_eq!(r.len(), 1);
        assert!(r.contains(&u(0, 0)));
        // Missing edge ⇒ empty restriction.
        assert!(
            past.restrict(&g, EdgeId::new(ReplicaId::new(0), ReplicaId::new(2)))
                .len()
                == 1
        ); // 0-2 IS an edge in ring(3) (reg 2)
    }

    #[test]
    fn empty_restriction_blocks_conflict() {
        // Condition 1 requires non-empty restriction on EVERY edge.
        let g = topology::ring(3);
        let i = ReplicaId::new(0);
        let s1 = CausalPast::new();
        let s2 = base_past(&g);
        assert!(!conflicts(&g, i, &s1, &s2));
    }

    #[test]
    fn incident_edge_subset_conflicts() {
        let g = topology::ring(3);
        let i = ReplicaId::new(0);
        let s1 = base_past(&g);
        let mut s2 = s1.clone();
        // Add one more update by r1 on the register shared with r0
        // (edge e_10, incident at i).
        s2.insert(u(1, 5), x(0));
        assert!(conflicts(&g, i, &s1, &s2));
        assert!(!conflicts(&g, i, &s2, &s1)); // asymmetric as defined
        assert!(conflicts_symmetric(&g, i, &s2, &s1));
    }

    #[test]
    fn identical_pasts_do_not_conflict() {
        let g = topology::ring(4);
        let i = ReplicaId::new(0);
        let s = base_past(&g);
        assert!(!conflicts(&g, i, &s, &s));
    }

    #[test]
    fn far_edge_subset_conflicts_via_loop() {
        // Ring of 4: i = r0, far edge e_21 (r2 -> r1). The loop
        // (0, 1=l_1? ...) — Definition 13's loop (i, l_1..l_s, r_1..r_t):
        // l side from i: 0-1 (l_1 = 1 = l_s), r side: r_1 = 2, r_2 = 3,
        // back to 0. e = e_{r_1 l_s} = e_21. Chain edges e_23, e_30 carry
        // updates not on lateral edges (base_past has one per edge).
        let g = topology::ring(4);
        let i = ReplicaId::new(0);
        let s1 = base_past(&g);
        let mut s2 = s1.clone();
        s2.insert(u(2, 9), x(1)); // reg 1 shared r1-r2: on edge e_21
        assert!(conflicts(&g, i, &s1, &s2));
    }

    #[test]
    fn difference_on_non_loop_edge_does_not_conflict() {
        // Path graph (no loops): a far-edge difference can't conflict.
        let g = topology::path(4);
        let i = ReplicaId::new(0);
        let s1 = base_past(&g);
        let mut s2 = s1.clone();
        s2.insert(u(2, 9), x(2)); // reg 2 shared r2-r3: far edge e_23
        assert!(!conflicts(&g, i, &s1, &s2));
        // But a difference on r0's own edge does conflict.
        let mut s3 = s1.clone();
        s3.insert(u(1, 9), x(0)); // e_10, incident at r0
        assert!(conflicts(&g, i, &s1, &s3));
    }

    #[test]
    fn condition2_loop_requires_chain_witnesses() {
        // Ring of 4 but the chain updates are removed from s1/s2 on edge
        // e_30: restriction empty ⇒ condition 1 already fails.
        let g = topology::ring(4);
        let i = ReplicaId::new(0);
        let mut s1 = CausalPast::new();
        for (n, &e) in g.edges().iter().enumerate() {
            if e == EdgeId::new(ReplicaId::new(3), ReplicaId::new(0)) {
                continue;
            }
            let reg = g.edge_registers(e).first().unwrap();
            s1.insert(u(e.from.raw(), 2000 + n as u64), reg);
        }
        let mut s2 = s1.clone();
        s2.insert(u(2, 9), x(1));
        assert!(!conflicts(&g, i, &s1, &s2));
    }
}
