//! Three-way tracker parity: the paper's edge-indexed algorithm, the
//! vector-clock baseline, and the full-dependency baseline must agree on
//! final register state for identical workloads — they differ only in
//! metadata shape and cost.

use prcc::core::{System, TrackerKind, Value};
use prcc::net::DelayModel;
use prcc::sharegraph::{topology, LoopConfig, RegisterId, ReplicaId};

fn final_state(
    g: &prcc::sharegraph::ShareGraph,
    kind: TrackerKind,
    seed: u64,
) -> (Vec<Option<Value>>, bool, usize) {
    let mut sys = System::builder(g.clone())
        .tracker(kind)
        .delay(DelayModel::Fixed(3))
        .seed(seed)
        .build();
    for round in 0..5u64 {
        for i in g.replicas() {
            for reg in g.placement().registers_of(i).iter() {
                if g.placement().holders(reg).first() == Some(&i) {
                    sys.write(i, reg, Value::from(round * 100 + u64::from(reg.raw())));
                }
            }
        }
        sys.run_to_quiescence();
    }
    let mut state = Vec::new();
    for reg in 0..g.placement().num_registers() as u32 {
        for &h in g.placement().holders(RegisterId::new(reg)) {
            state.push(sys.read(h, RegisterId::new(reg)).cloned());
        }
    }
    let consistent = sys.check().is_consistent();
    (state, consistent, sys.metrics().metadata_bytes)
}

#[test]
fn all_trackers_agree_on_ring() {
    let g = topology::ring(5);
    let (s_edge, ok_e, bytes_e) =
        final_state(&g, TrackerKind::EdgeIndexed(LoopConfig::EXHAUSTIVE), 4);
    let (s_vc, ok_v, _) = final_state(&g, TrackerKind::VectorClock, 4);
    let (s_dep, ok_d, bytes_d) = final_state(&g, TrackerKind::FullDeps, 4);
    assert!(ok_e && ok_v && ok_d);
    assert_eq!(s_edge, s_vc);
    assert_eq!(s_edge, s_dep);
    // The dependency baseline pays more metadata than the edge timestamps
    // on this sequential workload of 25 writes.
    assert!(bytes_d > bytes_e, "{bytes_d} vs {bytes_e}");
}

#[test]
fn all_trackers_agree_on_figure5() {
    let g = prcc::sharegraph::paper_examples::figure5();
    let (s_edge, ok_e, _) = final_state(&g, TrackerKind::EdgeIndexed(LoopConfig::EXHAUSTIVE), 9);
    let (s_vc, ok_v, _) = final_state(&g, TrackerKind::VectorClock, 9);
    let (s_dep, ok_d, _) = final_state(&g, TrackerKind::FullDeps, 9);
    assert!(ok_e && ok_v && ok_d);
    assert_eq!(s_edge, s_vc);
    assert_eq!(s_edge, s_dep);
}

#[test]
fn full_deps_consistent_under_adversarial_reordering() {
    // The held-link chain that breaks truncated tracking: full-deps must
    // survive it (it carries the entire closure).
    let r = ReplicaId::new;
    let x = RegisterId::new;
    let mut sys = System::builder(topology::ring(6))
        .tracker(TrackerKind::FullDeps)
        .delay(DelayModel::Fixed(1))
        .seed(0)
        .build();
    sys.hold_link(r(1), r(0));
    sys.write(r(1), x(0), Value::from(1u64));
    for i in 1..6u32 {
        sys.write(r(i), x(i), Value::from(2u64));
        sys.run_to_quiescence();
    }
    sys.release_link(r(1), r(0));
    sys.run_to_quiescence();
    let rep = sys.check();
    assert!(rep.is_consistent(), "{:?}", rep.violations);
}

#[test]
fn full_deps_random_seeds() {
    let g = topology::grid(3, 2);
    for seed in 0..6 {
        let mut sys = System::builder(g.clone())
            .tracker(TrackerKind::FullDeps)
            .delay(DelayModel::Uniform { min: 1, max: 30 })
            .seed(seed)
            .build();
        for round in 0..3u64 {
            for i in g.replicas() {
                if let Some(reg) = g.placement().registers_of(i).first() {
                    sys.write(i, reg, Value::from(round));
                }
                sys.step();
            }
        }
        sys.run_to_quiescence();
        assert!(sys.is_settled(), "seed {seed}");
        let rep = sys.check();
        assert!(rep.is_consistent(), "seed {seed}: {:?}", rep.violations);
    }
}
