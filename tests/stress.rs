//! Heavy stress tests — run with `cargo test -- --ignored` (they take
//! tens of seconds in debug builds; the regular suite stays fast).

use prcc::core::runtime::ThreadedCluster;
use prcc::core::{System, TrackerKind, Value};
use prcc::net::DelayModel;
use prcc::sharegraph::{
    topology::{self, RandomPlacementConfig},
    LoopConfig, RegisterId, ReplicaId,
};

/// 20 replicas, 60 registers, thousands of writes, several seeds. (Exact
/// timestamp-graph construction stays tractable here thanks to the
/// monotone condition-(i)/(ii) prunes in the loop search.)
#[test]
#[ignore = "heavy: ~30s debug"]
fn large_random_systems_stay_consistent() {
    for seed in 0..3 {
        let g = topology::random_connected_placement(RandomPlacementConfig {
            replicas: 20,
            registers: 60,
            replication_factor: 3,
            seed,
        });
        let mut sys = System::builder(g.clone())
            .delay(DelayModel::Uniform { min: 1, max: 50 })
            .seed(seed)
            .build();
        let mut v = 0u64;
        for _round in 0..20 {
            for i in g.replicas() {
                if let Some(reg) = g.placement().registers_of(i).first() {
                    sys.write(i, reg, Value::from(v));
                    v += 1;
                }
                sys.step();
                sys.step();
            }
        }
        sys.run_to_quiescence();
        assert!(sys.is_settled(), "seed {seed}");
        let rep = sys.check();
        assert!(rep.is_consistent(), "seed {seed}: {:?}", rep.violations);
    }
}

/// Big clique under the vector-clock baseline.
#[test]
#[ignore = "heavy: ~20s debug"]
fn big_clique_vector_clock_baseline() {
    let g = topology::clique_full(12, 24);
    let mut sys = System::builder(g.clone())
        .tracker(TrackerKind::VectorClock)
        .delay(DelayModel::Uniform { min: 1, max: 30 })
        .seed(1)
        .build();
    for round in 0..15u64 {
        for i in g.replicas() {
            sys.write(i, RegisterId::new((round % 24) as u32), Value::from(round));
            sys.step();
            sys.step();
            sys.step();
        }
    }
    sys.run_to_quiescence();
    assert!(sys.is_settled());
    assert!(sys.check().is_consistent());
}

/// Threaded cluster hammered by concurrent writers for a while.
#[test]
#[ignore = "heavy: wall-clock bound"]
fn threaded_cluster_long_run() {
    let g = topology::grid(3, 3);
    let cluster = ThreadedCluster::new(g.clone(), DelayModel::Uniform { min: 0, max: 3 }, 42);
    std::thread::scope(|s| {
        for i in g.replicas() {
            let c = &cluster;
            let menu: Vec<RegisterId> = g.placement().registers_of(i).iter().collect();
            s.spawn(move || {
                for round in 0..50u64 {
                    for &reg in &menu {
                        c.write(i, reg, Value::from(round));
                    }
                }
            });
        }
    });
    cluster.settle();
    let rep = cluster.check();
    assert!(rep.is_consistent(), "{} violations", rep.violations.len());
}

/// Exhaustive exploration of a wider concurrent scenario: four fully
/// concurrent writers on a shared register plus one dependent write.
#[test]
#[ignore = "heavy: large state space"]
fn explorer_wide_concurrency() {
    use prcc::core::Scenario;
    let g = topology::clique_full(4, 1);
    let mut s = Scenario::new(g).tracker(TrackerKind::EdgeIndexed(LoopConfig::EXHAUSTIVE));
    let mut last = 0;
    for i in 0..4u32 {
        last = s.write(ReplicaId::new(i), RegisterId::new(0));
    }
    s.write_after(ReplicaId::new(0), RegisterId::new(0), [last]);
    let res = s.explore();
    assert!(res.verified(), "{res}");
    assert!(res.states > 5_000, "{res}");
}
