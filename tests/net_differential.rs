//! Multi-process differential gate: `prcc-node --launch` spawns real OS
//! processes connected over loopback TCP, and its driver asserts the
//! stores are byte-identical to the in-process oracle and the merged
//! cross-process trace is causally consistent. This test just drives
//! the binary and checks its verdict — the heavy lifting (and the
//! precise failure diagnostics) live in the driver itself.

use std::process::Command;

fn launch(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_prcc-node"))
        .args(args)
        .output()
        .expect("prcc-node must spawn");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        out.status.success(),
        "prcc-node {args:?} failed\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    stdout
}

#[test]
fn three_process_loopback_matches_oracle() {
    let json = launch(&["--launch", "3", "--rounds", "4"]);
    assert!(json.contains("\"stores_match\": true"), "{json}");
    assert!(json.contains("\"consistent\": true"), "{json}");
    assert!(json.contains("\"ok\": true"), "{json}");
}

#[test]
fn four_process_clique_compressed_matches_oracle() {
    let json = launch(&[
        "--launch",
        "4",
        "--topology",
        "clique:4x2",
        "--wire",
        "compressed",
        "--rounds",
        "3",
    ]);
    assert!(json.contains("\"ok\": true"), "{json}");
}
