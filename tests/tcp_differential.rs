//! The socket transport's correctness gate, in-process: the same
//! designated-single-writer workload driven through a TCP-backed cluster
//! (real loopback sockets, kernel framing, link codec) and through the
//! in-process `ThreadedCluster` must end in **byte-identical** stores on
//! every replica, with identical causal-consistency verdicts.

use prcc::core::runtime::ThreadedCluster;
use prcc::core::{ClusterConfig, WireMode};
use prcc::net::{DelayModel, SessionConfig, TcpNetConfig};
use prcc::sharegraph::topology;
use prcc::sim::netrun::{store_lines, NetWorkload};

/// A session config tuned for loopback RTTs, so any startup shed is
/// repaired quickly.
fn loopback_session() -> SessionConfig {
    SessionConfig {
        rto_base: 20,
        rto_max: 200,
        jitter: 5,
        ack_delay: 0,
    }
}

fn run_differential(g: prcc::sharegraph::ShareGraph, wire: WireMode, rounds: u64) {
    let wl = NetWorkload::new(&g, rounds);
    let config = ClusterConfig {
        wire,
        session: Some(loopback_session()),
        ..ClusterConfig::default()
    };

    // Oracle: the in-process router with zero-tick delays.
    let oracle = ThreadedCluster::with_config(g.clone(), DelayModel::Fixed(0), 1, config.clone());
    wl.drive(&oracle);
    oracle.settle();

    // Subject: the same replicas over real kernel sockets.
    let tcp = ThreadedCluster::with_tcp(g.clone(), config, TcpNetConfig::default())
        .expect("loopback TCP cluster must start");
    wl.drive(&tcp);
    tcp.settle();

    for i in g.replicas() {
        assert_eq!(
            store_lines(&oracle.store_snapshot(i)),
            store_lines(&tcp.store_snapshot(i)),
            "replica {i} stores diverge between router and TCP runs ({wire:?})"
        );
    }
    let oracle_report = oracle.check();
    let tcp_report = tcp.check();
    assert_eq!(
        oracle_report.is_consistent(),
        tcp_report.is_consistent(),
        "checker verdicts diverge ({wire:?}): oracle {:?}, tcp {:?}",
        oracle_report.violations,
        tcp_report.violations
    );
    assert!(
        tcp_report.is_consistent(),
        "TCP run is causally inconsistent: {:?}",
        tcp_report.violations
    );
    // The TCP run really went over sockets.
    let stats = tcp.tcp_stats().expect("tcp cluster reports stats");
    let bytes: u64 = stats.iter().map(|s| s.bytes_sent).sum();
    assert!(bytes > 0, "no bytes crossed the kernel");
}

#[test]
fn tcp_matches_router_on_ring_compressed() {
    run_differential(topology::ring(5), WireMode::Compressed, 6);
}

#[test]
fn tcp_matches_router_on_ring_raw() {
    run_differential(topology::ring(4), WireMode::Raw, 5);
}

#[test]
fn tcp_matches_router_on_clique_compressed() {
    run_differential(topology::clique_full(6, 3), WireMode::Compressed, 4);
}

#[test]
fn tcp_matches_router_on_grid_adaptive() {
    run_differential(topology::grid(3, 3), WireMode::Adaptive, 4);
}
