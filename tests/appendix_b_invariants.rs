//! Appendix B's correctness lemmas, validated as runtime invariants on
//! real (randomized) executions.
//!
//! **Lemma 22**: let `u` be an update from `j` to `i` and `u'` an update
//! from `k` to `i` with `u' ↪ u`. Then the attached timestamps satisfy
//! `T[e_ki] ≥ T'[e_ki]`, strictly when `k = j`. This monotone carrying of
//! counters along causal chains is exactly why predicate `J` is safe.

use prcc::checker::HbGraph;
use prcc::core::{Metadata, System, Value};
use prcc::net::DelayModel;
use prcc::sharegraph::{topology, EdgeId, LoopConfig, RegisterId, ReplicaId, TimestampGraphs};

/// Runs a randomized workload and checks Lemma 22 on every applicable
/// update pair.
fn check_lemma22(g: prcc::sharegraph::ShareGraph, seed: u64) {
    let graphs = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
    let mut sys = System::builder(g.clone())
        .delay(DelayModel::Uniform { min: 1, max: 25 })
        .seed(seed)
        .build();
    for round in 0..4u64 {
        for i in g.replicas() {
            for reg in g.placement().registers_of(i).iter() {
                if g.placement().holders(reg).first() == Some(&i) || round % 2 == 0 {
                    sys.write(i, reg, Value::from(round));
                }
            }
            sys.step();
            sys.step();
        }
    }
    sys.run_to_quiescence();
    assert!(sys.check().is_consistent());

    let hb = HbGraph::build(sys.trace());
    let updates = hb.updates().to_vec();
    let mut pairs_checked = 0usize;
    for &u in &updates {
        let j = u.issuer;
        let reg_u = sys.trace().register_of(u).unwrap();
        for &up in &updates {
            if up == u || !hb.happened_before(up, u) {
                continue;
            }
            let k = up.issuer;
            let reg_up = sys.trace().register_of(up).unwrap();
            // Common destination i: stores both registers, distinct from
            // both issuers.
            for i in g.replicas() {
                if i == j || i == k {
                    continue;
                }
                if !g.placement().stores(i, reg_u) || !g.placement().stores(i, reg_up) {
                    continue;
                }
                let e_ki = EdgeId::new(k, i);
                // Both issuers must track e_ki for the counters to exist.
                let (Some(pj), Some(pk)) =
                    (graphs.of(j).position(e_ki), graphs.of(k).position(e_ki))
                else {
                    continue;
                };
                let (Some(Metadata::Edge(t_u)), Some(Metadata::Edge(t_up))) =
                    (sys.metadata_of(u), sys.metadata_of(up))
                else {
                    continue;
                };
                let tu = t_u.values()[pj];
                let tup = t_up.values()[pk];
                if k == j {
                    assert!(
                        tu > tup,
                        "Lemma 22 strict: {u} vs {up} at {i}: {tu} !> {tup} (seed {seed})"
                    );
                } else {
                    assert!(
                        tu >= tup,
                        "Lemma 22: {u} vs {up} at {i}: {tu} < {tup} (seed {seed})"
                    );
                }
                pairs_checked += 1;
            }
        }
    }
    assert!(pairs_checked > 0, "no applicable pairs on seed {seed}");
}

#[test]
fn lemma22_on_rings() {
    for seed in 0..4 {
        check_lemma22(topology::ring(5), seed);
    }
}

#[test]
fn lemma22_on_figure5() {
    for seed in 0..4 {
        check_lemma22(prcc::sharegraph::paper_examples::figure5(), seed);
    }
}

#[test]
fn lemma22_on_clique() {
    for seed in 0..3 {
        check_lemma22(topology::clique_full(4, 6), seed);
    }
}

/// **Lemma 21** shape: a replica's counter for `e_ji` equals the number of
/// updates from `j` it has applied — so `τ_i[e_ji] ≥ T[e_ji]` implies the
/// update is already applied. We verify the counting identity directly.
#[test]
fn lemma21_counter_counts_applied_updates() {
    let g = topology::path(2);
    let r0 = ReplicaId::new(0);
    let r1 = ReplicaId::new(1);
    let x0 = RegisterId::new(0);
    let mut sys = System::builder(g)
        .delay(DelayModel::Fixed(1))
        .seed(0)
        .build();
    for n in 1..=5u64 {
        sys.write(r0, x0, Value::from(n));
        sys.run_to_quiescence();
        // Replica 1's applied count equals n; its timestamp counter for
        // e_01 (tracked by its own tracker) must also be n — reflected in
        // the metadata of its next write.
        let id = sys.write(r1, x0, Value::from(100 + n));
        sys.run_to_quiescence();
        let Some(Metadata::Edge(t)) = sys.metadata_of(id) else {
            panic!("edge metadata expected");
        };
        let graphs = TimestampGraphs::build(&topology::path(2), LoopConfig::EXHAUSTIVE);
        let pos = graphs.of(r1).position(EdgeId::new(r0, r1)).unwrap();
        assert_eq!(t.values()[pos], n, "counter after {n} applies");
    }
}
