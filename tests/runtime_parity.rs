//! The threaded runtime and the deterministic simulator implement the
//! same protocol: both stay causally consistent, and sequential workloads
//! produce identical final states.

use prcc::core::runtime::ThreadedCluster;
use prcc::core::{System, Value};
use prcc::net::DelayModel;
use prcc::sharegraph::{topology, RegisterId, ReplicaId};

fn r(i: u32) -> ReplicaId {
    ReplicaId::new(i)
}
fn x(i: u32) -> RegisterId {
    RegisterId::new(i)
}

#[test]
fn sequential_workload_same_final_state() {
    let g = topology::ring(4);
    // Simulated run.
    let mut sim = System::builder(g.clone())
        .delay(DelayModel::Fixed(2))
        .seed(4)
        .build();
    // Threaded run.
    let cluster = ThreadedCluster::new(g.clone(), DelayModel::Fixed(1), 4);

    for round in 0..5u64 {
        for i in 0..4u32 {
            let v = Value::from(round * 4 + u64::from(i));
            sim.write(r(i), x(i), v.clone());
            cluster.write(r(i), x(i), v);
        }
        sim.run_to_quiescence();
        cluster.settle();
    }

    for reg in 0..4u32 {
        for &h in g.placement().holders(x(reg)) {
            assert_eq!(
                sim.read(h, x(reg)).cloned(),
                cluster.read(h, x(reg)),
                "register {reg} at {h}"
            );
        }
    }
    assert!(sim.check().is_consistent());
    assert!(cluster.check().is_consistent());
}

#[test]
fn threaded_concurrent_hammering_stays_consistent() {
    let g = topology::grid(3, 2);
    let cluster = ThreadedCluster::new(g.clone(), DelayModel::Uniform { min: 0, max: 4 }, 17);
    std::thread::scope(|s| {
        for i in g.replicas() {
            let c = &cluster;
            let menu: Vec<RegisterId> = g.placement().registers_of(i).iter().collect();
            s.spawn(move || {
                for round in 0..8u64 {
                    for &reg in &menu {
                        c.write(i, reg, Value::from(round));
                    }
                }
            });
        }
    });
    cluster.settle();
    let rep = cluster.check();
    assert!(rep.is_consistent(), "{:?}", rep.violations);
    let trace = cluster.shutdown();
    // 6 replicas × 8 rounds × 2-3 registers each.
    assert!(trace.num_updates() >= 6 * 8 * 2);
}

#[test]
fn threaded_cluster_read_blocking_semantics() {
    // Reads are local (step 1 of the prototype): they return whatever the
    // replica has applied, never blocking.
    let g = topology::path(2);
    let cluster = ThreadedCluster::new(g, DelayModel::Fixed(5), 0);
    assert_eq!(cluster.read(r(1), x(0)), None); // nothing written yet
    cluster.write(r(0), x(0), Value::from(1u64));
    cluster.settle();
    assert_eq!(cluster.read(r(1), x(0)), Some(Value::from(1u64)));
}
