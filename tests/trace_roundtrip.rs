//! Cross-crate round trip: run a real protocol execution, serialize its
//! trace, replay it through the checker offline — verdicts must match.

use prcc::checker::{check, from_text, to_text};
use prcc::core::{System, TrackerKind, Value};
use prcc::net::DelayModel;
use prcc::sharegraph::{edge, topology, RegisterId, ReplicaId};

fn r(i: u32) -> ReplicaId {
    ReplicaId::new(i)
}
fn x(i: u32) -> RegisterId {
    RegisterId::new(i)
}

#[test]
fn consistent_run_survives_serialization() {
    let g = topology::grid(3, 2);
    let mut sys = System::builder(g.clone())
        .delay(DelayModel::Uniform { min: 1, max: 20 })
        .seed(5)
        .build();
    for round in 0..4u64 {
        for i in g.replicas() {
            for reg in g.placement().registers_of(i).iter() {
                if g.placement().holders(reg).first() == Some(&i) {
                    sys.write(i, reg, Value::from(round));
                }
            }
            sys.step();
        }
    }
    sys.run_to_quiescence();

    let text = to_text(sys.trace());
    assert!(text.lines().count() > 20);
    let replayed = from_text(&text).expect("parse");
    let direct = check(sys.trace(), g.placement());
    let offline = check(&replayed, g.placement());
    assert_eq!(direct.violations, offline.violations);
    assert!(offline.is_consistent());
    assert_eq!(direct.applies_checked, offline.applies_checked);
}

#[test]
fn violating_run_survives_serialization() {
    // The oblivious far-edge execution produces a safety violation; the
    // serialized trace must reproduce it exactly offline.
    let mut sys = System::builder(topology::ring(6))
        .drop_edge(r(0), edge(2, 1))
        .delay(DelayModel::Fixed(1))
        .seed(0)
        .build();
    sys.hold_link(r(2), r(1));
    sys.write(r(2), x(1), Value::from(1u64));
    for i in 2..6u32 {
        sys.write(r(i), x(i), Value::from(2u64));
        sys.run_to_quiescence();
    }
    sys.write(r(0), x(0), Value::from(3u64));
    sys.run_to_quiescence();
    sys.release_link(r(2), r(1));
    sys.run_to_quiescence();

    let placement = sys.data_placement().clone();
    let direct = sys.check();
    assert!(!direct.is_consistent());

    let replayed = from_text(&to_text(sys.trace())).expect("parse");
    let offline = check(&replayed, &placement);
    assert_eq!(direct.violations, offline.violations);
}

#[test]
fn vc_run_roundtrip_matches() {
    let g = topology::clique_full(4, 4);
    let mut sys = System::builder(g.clone())
        .tracker(TrackerKind::VectorClock)
        .seed(2)
        .build();
    for i in 0..4u32 {
        sys.write(r(i), x(i), Value::from(u64::from(i)));
    }
    sys.run_to_quiescence();
    let replayed = from_text(&to_text(sys.trace())).expect("parse");
    assert_eq!(replayed.num_updates(), 4);
    assert!(check(&replayed, g.placement()).is_consistent());
}
