//! Property-based tests (proptest) over the core data structures and the
//! protocol's invariants.

use prcc::checker::HbGraph;
use prcc::core::{System, Value};
use prcc::net::DelayModel;
use prcc::sharegraph::{
    topology::{self, RandomPlacementConfig},
    LoopConfig, RegSet, RegisterId, ReplicaId, TimestampGraph, TimestampGraphs,
};
use prcc::timestamp::VectorClock;
use proptest::prelude::*;

proptest! {
    /// RegSet obeys basic set-algebra laws.
    #[test]
    fn regset_algebra_laws(a in proptest::collection::vec(0u32..200, 0..40),
                           b in proptest::collection::vec(0u32..200, 0..40)) {
        let sa = RegSet::from_indices(a.iter().copied());
        let sb = RegSet::from_indices(b.iter().copied());
        // Commutativity.
        prop_assert_eq!(sa.union(&sb), sb.union(&sa));
        prop_assert_eq!(sa.intersection(&sb), sb.intersection(&sa));
        // |A ∪ B| = |A| + |B| − |A ∩ B|.
        prop_assert_eq!(
            sa.union(&sb).len() + sa.intersection(&sb).len(),
            sa.len() + sb.len()
        );
        // A − B ⊆ A and disjoint from B.
        let diff = sa.difference(&sb);
        prop_assert!(diff.is_subset(&sa));
        prop_assert!(!diff.intersects(&sb));
        // has_element_outside agrees with difference.
        prop_assert_eq!(sa.has_element_outside(&sb), !diff.is_empty());
    }

    /// Vector-clock merge is commutative, associative, idempotent, and
    /// monotone.
    #[test]
    fn vector_clock_merge_laws(a in proptest::collection::vec(0u64..50, 4),
                               b in proptest::collection::vec(0u64..50, 4),
                               c in proptest::collection::vec(0u64..50, 4)) {
        let mk = |v: &[u64]| {
            let mut vc = VectorClock::new(v.len());
            for (i, &n) in v.iter().enumerate() {
                for _ in 0..n {
                    vc.increment(ReplicaId::new(i as u32));
                }
            }
            vc
        };
        let (va, vb, vc_) = (mk(&a), mk(&b), mk(&c));
        // Commutative.
        let mut ab = va.clone(); ab.merge(&vb);
        let mut ba = vb.clone(); ba.merge(&va);
        prop_assert_eq!(&ab, &ba);
        // Associative.
        let mut ab_c = ab.clone(); ab_c.merge(&vc_);
        let mut bc = vb.clone(); bc.merge(&vc_);
        let mut a_bc = va.clone(); a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        // Idempotent.
        let mut aa = va.clone(); aa.merge(&va);
        prop_assert_eq!(&aa, &va);
        // Monotone: a ≤ merge(a, b).
        use std::cmp::Ordering;
        let ord = va.partial_cmp_causal(&ab);
        prop_assert!(matches!(ord, Some(Ordering::Less) | Some(Ordering::Equal)));
    }

    /// Timestamp graphs always contain all incident edges, are subsets of
    /// the share graph's edges, and truncation is monotone in the cap.
    #[test]
    fn timestamp_graph_structural_invariants(seed in 0u64..50) {
        let g = topology::random_connected_placement(RandomPlacementConfig {
            replicas: 6,
            registers: 8,
            replication_factor: 2,
            seed,
        });
        for i in g.replicas() {
            let exact = TimestampGraph::build(&g, i, LoopConfig::EXHAUSTIVE);
            for &e in g.edges() {
                if e.touches(i) {
                    prop_assert!(exact.contains(e), "incident {e} missing at {i}");
                }
            }
            for &e in exact.edges() {
                prop_assert!(g.has_edge(e), "{e} not a share edge");
            }
            let mut prev = TimestampGraph::build(&g, i, LoopConfig::bounded(3));
            for cap in 4..=6 {
                let cur = TimestampGraph::build(&g, i, LoopConfig::bounded(cap));
                for &e in prev.edges() {
                    prop_assert!(cur.contains(e), "cap {cap} lost edge {e}");
                }
                prev = cur;
            }
            for &e in prev.edges() {
                prop_assert!(exact.contains(e));
            }
        }
    }

    /// The protocol is causally consistent on random connected placements
    /// under random delays — the paper's sufficiency claim (Section 3.3),
    /// fuzzed.
    #[test]
    fn protocol_consistent_on_random_placements(seed in 0u64..40) {
        let g = topology::random_connected_placement(RandomPlacementConfig {
            replicas: 5,
            registers: 6,
            replication_factor: 2,
            seed,
        });
        let mut sys = System::builder(g.clone())
            .delay(DelayModel::Uniform { min: 1, max: 25 })
            .seed(seed)
            .build();
        let mut v = 0u64;
        for _round in 0..3 {
            for i in g.replicas() {
                if let Some(reg) = g.placement().registers_of(i).first() {
                    sys.write(i, reg, Value::from(v));
                    v += 1;
                }
                sys.step();
            }
        }
        sys.run_to_quiescence();
        prop_assert!(sys.is_settled());
        let rep = sys.check();
        prop_assert!(rep.is_consistent(), "{:?}", rep.violations);
    }

    /// Happened-before is a strict partial order on every generated trace.
    #[test]
    fn happened_before_is_strict_partial_order(seed in 0u64..30) {
        let g = topology::ring(4);
        let mut sys = System::builder(g.clone())
            .delay(DelayModel::Uniform { min: 1, max: 15 })
            .seed(seed)
            .build();
        for round in 0..3u64 {
            for i in 0..4u32 {
                sys.write(ReplicaId::new(i), RegisterId::new(i), Value::from(round));
                sys.step();
            }
        }
        sys.run_to_quiescence();
        let hb = HbGraph::build(sys.trace());
        let updates = hb.updates().to_vec();
        for &u in &updates {
            prop_assert!(!hb.happened_before(u, u), "irreflexive");
        }
        for &u in &updates {
            for &v in &updates {
                if hb.happened_before(u, v) {
                    prop_assert!(!hb.happened_before(v, u), "antisymmetric");
                }
                for &w in &updates {
                    if hb.happened_before(u, v) && hb.happened_before(v, w) {
                        prop_assert!(hb.happened_before(u, w), "transitive");
                    }
                }
            }
        }
    }
}

/// Non-proptest invariant: TimestampGraphs totals are stable across
/// rebuilds (construction is deterministic).
#[test]
fn timestamp_graph_construction_deterministic() {
    let g = topology::grid(3, 3);
    let a = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
    let b = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
    assert_eq!(a.total_counters(), b.total_counters());
    for i in g.replicas() {
        assert_eq!(a.of(i).edges(), b.of(i).edges());
    }
}
