//! End-to-end assertions of the paper's headline claims, exercised
//! through the public facade API.

use prcc::core::{System, TrackerKind, Value};
use prcc::net::DelayModel;
use prcc::sharegraph::{
    edge, paper_examples, topology, LoopConfig, RegisterId, ReplicaId, TimestampGraphs,
};
use prcc::timestamp::bits::{cycle_lower_bound_bits, timestamp_bits, tree_lower_bound_bits};
use prcc::timestamp::compress_replica;

fn r(i: u32) -> ReplicaId {
    ReplicaId::new(i)
}
fn x(i: u32) -> RegisterId {
    RegisterId::new(i)
}

/// Figure 5 worked example: the exact asymmetric edge set of G_1.
#[test]
fn figure5_timestamp_graph_asymmetry() {
    let g = paper_examples::figure5();
    let graphs = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
    let g1 = graphs.of(r(0));
    assert!(g1.contains(edge(3, 2)) && !g1.contains(edge(2, 3)));
    assert!(g1.contains(edge(2, 1)) && !g1.contains(edge(1, 2)));
}

/// Section 4: the algorithm is *tight* on trees and cycles — its
/// timestamp bits equal the closed-form lower bounds.
#[test]
fn algorithm_meets_lower_bounds_on_trees_and_cycles() {
    let m = 500;
    for leaves in [2usize, 4, 8] {
        let g = topology::star(leaves);
        let graphs = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
        for i in g.replicas() {
            assert_eq!(
                timestamp_bits(graphs.of(i).len(), m),
                tree_lower_bound_bits(g.degree(i), m),
                "star({leaves}) replica {i}"
            );
        }
    }
    for n in [3usize, 5, 9] {
        let g = topology::ring(n);
        let graphs = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
        for i in g.replicas() {
            assert_eq!(
                timestamp_bits(graphs.of(i).len(), m),
                cycle_lower_bound_bits(n, m),
                "ring({n}) replica {i}"
            );
        }
    }
}

/// Section 5: in the full-replication special case, compression recovers
/// exactly the classic vector clock (R counters).
#[test]
fn full_replication_compresses_to_vector_clock() {
    for n in [3usize, 5, 7] {
        let g = topology::clique_full(n, 2 * n);
        let graphs = TimestampGraphs::build(&g, LoopConfig::EXHAUSTIVE);
        for i in g.replicas() {
            assert_eq!(compress_replica(&g, graphs.of(i)).rank_compressed, n);
        }
    }
}

/// The protocol as a whole: every topology in the generator zoo stays
/// causally consistent under randomized non-FIFO delays.
#[test]
fn protocol_consistent_across_topology_zoo() {
    let graphs = vec![
        ("path4", topology::path(4)),
        ("ring5", topology::ring(5)),
        ("star4", topology::star(4)),
        ("tree7", topology::binary_tree(7)),
        ("grid3x2", topology::grid(3, 2)),
        ("clique4", topology::clique_full(4, 6)),
        ("fig3", paper_examples::figure3()),
        ("fig5", paper_examples::figure5()),
        ("fig8a", paper_examples::figure8a()),
        ("fig8b", paper_examples::figure8b()),
    ];
    for (name, g) in graphs {
        for seed in 0..3 {
            let mut sys = System::builder(g.clone())
                .delay(DelayModel::Uniform { min: 1, max: 30 })
                .seed(seed)
                .build();
            for round in 0..3u64 {
                for reg in 0..g.placement().num_registers() as u32 {
                    for &h in g.placement().holders(x(reg)) {
                        sys.write(h, x(reg), Value::from(round));
                    }
                    sys.step();
                    sys.step();
                }
            }
            sys.run_to_quiescence();
            assert!(sys.is_settled(), "{name} seed {seed} stuck");
            let rep = sys.check();
            assert!(
                rep.is_consistent(),
                "{name} seed {seed}: {:?}",
                rep.violations
            );
        }
    }
}

/// Theorem 8, end to end: dropping any single tracked far edge of some
/// replica admits an execution that violates consistency, while the full
/// edge set never does (spot-checked on the ring-6 construction).
#[test]
fn theorem8_far_edge_necessity() {
    let build = |drop: bool| {
        let mut b = System::builder(topology::ring(6))
            .delay(DelayModel::Fixed(1))
            .seed(0);
        if drop {
            b = b.drop_edge(r(0), edge(2, 1));
        }
        b.build()
    };
    for drop in [false, true] {
        let mut sys = build(drop);
        sys.hold_link(r(2), r(1));
        sys.write(r(2), x(1), Value::from(1u64));
        for i in 2..6u32 {
            sys.write(r(i), x(i), Value::from(2u64));
            sys.run_to_quiescence();
        }
        sys.write(r(0), x(0), Value::from(3u64));
        sys.run_to_quiescence();
        sys.release_link(r(2), r(1));
        sys.run_to_quiescence();
        let consistent = sys.check().is_consistent();
        assert_eq!(consistent, !drop, "drop={drop}");
    }
}

/// The vector-clock baseline agrees with the edge-indexed algorithm on
/// final register state for a deterministic workload.
#[test]
fn baselines_agree_on_final_state() {
    let g = topology::ring(5);
    let run = |kind: TrackerKind| {
        let mut sys = System::builder(g.clone())
            .tracker(kind)
            .delay(DelayModel::Fixed(3))
            .seed(9)
            .build();
        for round in 0..4u64 {
            for i in 0..5u32 {
                sys.write(r(i), x(i), Value::from(round * 10 + u64::from(i)));
            }
            sys.run_to_quiescence();
        }
        let mut state = Vec::new();
        for reg in 0..5u32 {
            for &h in g.placement().holders(x(reg)) {
                state.push(sys.read(h, x(reg)).cloned());
            }
        }
        assert!(sys.check().is_consistent());
        state
    };
    let a = run(TrackerKind::EdgeIndexed(LoopConfig::EXHAUSTIVE));
    let b = run(TrackerKind::VectorClock);
    assert_eq!(a, b);
}
