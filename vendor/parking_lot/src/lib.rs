//! Offline vendored subset of the `parking_lot` crate API.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free
//! interface (`lock()` returns the guard directly). A poisoned std lock
//! means a thread panicked while holding it; matching `parking_lot`, we
//! propagate the inner data anyway rather than surfacing a `Result`.

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns an error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock whose acquisition methods never return an error.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(format!("{m:?}").contains("Mutex"));
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
