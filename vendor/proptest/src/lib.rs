//! Offline vendored subset of the `proptest` crate API.
//!
//! Supports the forms this workspace uses: the [`proptest!`] item macro
//! (`fn name(arg in strategy, ...) { body }`), integer-range strategies,
//! [`collection::vec`] and [`collection::btree_set`], and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! * **No shrinking.** A failing case panics immediately; the runner
//!   prints the case number and the generated inputs (`Debug`) so the
//!   failure is reproducible — every generator is deterministic, keyed by
//!   `(test name, case index)`.
//! * **Fixed case count.** Each property runs `PROPTEST_CASES` cases
//!   (environment variable, default 100) instead of upstream's adaptive
//!   256.

pub use rand::rngs::StdRng;
use rand::SeedableRng;

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u32, u64, usize);

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy};

    /// Strategy producing a `Vec` of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy producing a `BTreeSet` of `element` values with a target
    /// size drawn from `size` (possibly smaller when duplicates collide,
    /// matching upstream's best-effort semantics for narrow domains).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut super::StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + std::fmt::Debug,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut super::StdRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = std::collections::BTreeSet::new();
            // Bounded attempts: narrow element domains may not have
            // `target` distinct values.
            for _ in 0..target.saturating_mul(4) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// A collection-length specification (`usize` or `Range<usize>`).
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        use rand::Rng;
        if self.lo + 1 >= self.hi_exclusive {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi_exclusive)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end.max(r.start + 1),
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 100).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
}

/// Deterministic per-case RNG: seeded from an FNV-1a hash of the test
/// name mixed with the case index.
pub fn case_rng(test_name: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`cases`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::cases();
                for __case in 0..__cases {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __dbg = format!(
                        concat!($("    ", stringify!($arg), " = {:?}\n",)+),
                        $(&$arg),+
                    );
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(e) = __outcome {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed with inputs:\n{}",
                            __case + 1, __cases, stringify!($name), __dbg
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The glob-importable surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges stay in bounds and the runner is deterministic.
        #[test]
        fn range_strategies_in_bounds(a in 3u64..9, b in 1usize..=4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((1..=4).contains(&b));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u32..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn btree_set_strategy_bounded(s in crate::collection::btree_set(0u32..30, 0..10)) {
            prop_assert!(s.len() < 10);
        }
    }

    #[test]
    fn fixed_size_vec() {
        let strat = crate::collection::vec(0u64..50, 4);
        let mut rng = crate::case_rng("fixed", 0);
        assert_eq!(strat.generate(&mut rng).len(), 4);
    }

    #[test]
    fn deterministic_per_case() {
        let s = 0u64..1000;
        let a = s.generate(&mut crate::case_rng("t", 3));
        let b = s.generate(&mut crate::case_rng("t", 3));
        assert_eq!(a, b);
    }
}
