//! Offline vendored subset of the `rand` crate API.
//!
//! The build environment has no registry access, so this workspace ships
//! the small slice of `rand` it actually uses: a seedable deterministic
//! generator ([`rngs::StdRng`]), the [`Rng`] convenience methods
//! (`gen_range`, `gen_bool`, `gen`), and the [`seq::SliceRandom`] helpers
//! (`shuffle`, `choose`, `choose_multiple`). The generator is
//! xoshiro256++ seeded through SplitMix64 — the same construction the
//! real `rand_chacha`-backed `StdRng` replaces; statistically strong for
//! simulation workloads and fully deterministic per seed.
//!
//! Stream compatibility with upstream `rand` is *not* promised (seeds
//! produce different sequences than rand 0.8's ChaCha12); every consumer
//! in this workspace only relies on determinism, not on specific values.

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value convenience surface used by this workspace.
pub trait Rng {
    /// The core source: the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in the given range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: ranges::SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// A uniform value of a supported type (`f64` in `[0, 1)`, integers
    /// over their full range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range sampling (the `gen_range` argument).
pub mod ranges {
    use super::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A range a value can be drawn uniformly from.
    pub trait SampleRange<T> {
        /// Draws one value.
        fn sample_from<R: Rng>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (uniform_u64(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (uniform_u64(rng, span + 1) as $t)
                }
            }
        )*};
    }
    impl_int_range!(u32, u64, usize);

    /// Uniform in `[0, span)` with rejection sampling (no modulo bias).
    fn uniform_u64<R: Rng>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span.is_power_of_two() {
            return rng.next_u64() & (span - 1);
        }
        // Largest multiple of span that fits in u64.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = rng.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's stand-in for
    /// `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, as
            // recommended by Blackman & Vigna.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (`rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (fewer if the slice
        /// is shorter).
        fn choose_multiple<R: Rng>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            idx.shuffle(rng);
            idx.truncate(amount);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&v));
            let w: usize = rng.gen_range(0usize..5);
            assert!(w < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = StdRng::seed_from_u64(4);
        let v: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 5).copied().collect();
        assert_eq!(picked.len(), 5);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 5);
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
