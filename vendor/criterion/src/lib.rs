//! Offline API-compatible subset of [criterion](https://docs.rs/criterion):
//! enough surface for `cargo bench` to compile and produce useful numbers
//! without network access or plotting. Each benchmark runs `sample_size`
//! samples (auto-calibrated iteration counts per sample) and reports the
//! median ns/iteration to stderr.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier — defers to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup allocations. The shim times the
/// routine per element regardless of the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    /// Collected sample durations with their iteration counts.
    samples: Vec<(Duration, u64)>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            sample_size,
        }
    }

    /// Times `routine`, auto-calibrating the per-sample iteration count
    /// so each sample runs long enough to be measurable.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the iteration count until one sample takes at
        // least ~1 ms (or the routine is clearly slow).
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let d = t.elapsed();
            if d >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push((t.elapsed(), iters));
        }
    }

    /// Times `routine` over inputs produced by `setup`, excluding setup
    /// cost from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push((t.elapsed(), 1));
        }
    }

    fn median_ns(&self) -> f64 {
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|(d, n)| d.as_nanos() as f64 / (*n).max(1) as f64)
            .collect();
        if per_iter.is_empty() {
            return 0.0;
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        per_iter[per_iter.len() / 2]
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&self.name, &id.to_string(), b.median_ns());
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&self.name, &id.to_string(), b.median_ns());
        self
    }

    pub fn finish(self) {}
}

/// Throughput annotation (accepted, not reported by the shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

fn report(group: &str, id: &str, ns: f64) {
    if ns >= 1_000_000.0 {
        eprintln!("{group}/{id:<40} {:>12.3} ms/iter", ns / 1_000_000.0);
    } else if ns >= 1_000.0 {
        eprintln!("{group}/{id:<40} {:>12.3} us/iter", ns / 1_000.0);
    } else {
        eprintln!("{group}/{id:<40} {ns:>12.1} ns/iter");
    }
}

/// The benchmark manager. `Default::default()` matches criterion's entry
/// point; configuration methods are accepted and mostly ignored.
#[derive(Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size.unwrap_or(20),
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size.unwrap_or(20));
        f(&mut b);
        report("bench", &id.to_string(), b.median_ns());
        self
    }

    pub fn final_summary(&self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut c);
            )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config.configure_from_args();
            $(
                $target(&mut c);
            )+
        }
    };
}

/// Runs the declared groups as the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with --test: skip timing.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $(
                $group();
            )+
        }
    };
}
