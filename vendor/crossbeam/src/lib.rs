//! Offline vendored subset of the `crossbeam` crate API.
//!
//! Provides `crossbeam::channel::{bounded, unbounded, Sender, Receiver}`
//! — multi-producer multi-consumer channels with cloneable endpoints and
//! disconnect detection — built on `std::sync::{Mutex, Condvar}`. The
//! workspace only needs the blocking/timeout/try receive operations and
//! `send`, so that is the full surface here.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when a message arrives or an endpoint class drops out.
        not_empty: Condvar,
        /// Signalled when capacity frees up (bounded channels).
        not_full: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (messages go to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Bounded channel at capacity right now.
        Full(T),
        /// All receivers dropped.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("TrySendError::Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("TrySendError::Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel empty right now.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// A bounded MPMC channel holding at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut g = self.shared.inner.lock().unwrap();
            g.senders -= 1;
            if g.senders == 0 {
                drop(g);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut g = self.shared.inner.lock().unwrap();
            g.receivers -= 1;
            if g.receivers == 0 {
                drop(g);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full. Fails if
        /// every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut g = self.shared.inner.lock().unwrap();
            loop {
                if g.receivers == 0 {
                    return Err(SendError(msg));
                }
                match g.cap {
                    Some(cap) if g.queue.len() >= cap => {
                        g = self.shared.not_full.wait(g).unwrap();
                    }
                    _ => break,
                }
            }
            g.queue.push_back(msg);
            drop(g);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking send: fails with `Full` instead of waiting when a
        /// bounded channel is at capacity.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut g = self.shared.inner.lock().unwrap();
            if g.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = g.cap {
                if g.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            g.queue.push_back(msg);
            drop(g);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut g = self.shared.inner.lock().unwrap();
            match g.queue.pop_front() {
                Some(v) => {
                    drop(g);
                    self.shared.not_full.notify_one();
                    Ok(v)
                }
                None if g.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive; fails once the channel is empty and every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut g = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = g.queue.pop_front() {
                    drop(g);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if g.senders == 0 {
                    return Err(RecvError);
                }
                g = self.shared.not_empty.wait(g).unwrap();
            }
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut g = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = g.queue.pop_front() {
                    drop(g);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if g.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .shared
                    .not_empty
                    .wait_timeout(g, deadline - now)
                    .unwrap();
                g = guard;
                if res.timed_out() && g.queue.is_empty() {
                    if g.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_detected() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
            let (tx2, rx2) = unbounded::<u32>();
            drop(rx2);
            assert_eq!(tx2.send(5), Err(SendError(5)));
        }

        #[test]
        fn timeout_elapses() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = bounded::<u32>(2);
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn try_send_reports_full_and_disconnected() {
            let (tx, rx) = bounded::<u32>(1);
            assert_eq!(tx.try_send(1), Ok(()));
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(tx.try_send(3), Ok(()));
            drop(rx);
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        }

        #[test]
        fn cloned_endpoints_share_queue() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            let rx2 = rx.clone();
            tx2.send(9).unwrap();
            assert_eq!(rx2.recv(), Ok(9));
            drop(tx);
            drop(tx2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
